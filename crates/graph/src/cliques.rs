//! Exact maximum-weight clique and independent-set search.
//!
//! The packing-class condition **C2** bounds the total width of every stable
//! set of a component graph — equivalently, of every clique of its
//! complement. The solver checks it by maximum-weight clique queries on the
//! (small) graphs of fixed comparability edges, so an exact weighted clique
//! routine is a core substrate.

use crate::{BitSet, DenseGraph};

/// Result of a maximum-weight clique search: the clique and its total weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedClique {
    /// Vertices of the clique.
    pub vertices: BitSet,
    /// Sum of the vertex weights.
    pub weight: u64,
}

/// Finds a maximum-weight clique of `g` under vertex `weights`.
///
/// Branch-and-bound in the Bron–Kerbosch style: candidates are pruned when
/// even taking *all* remaining candidate weight cannot beat the incumbent.
/// Exact; intended for the small graphs of the packing-class method
/// (exponential worst case, as the problem is NP-hard in general).
///
/// # Panics
///
/// Panics if `weights.len() != g.vertex_count()`.
///
/// # Example
///
/// ```
/// use recopack_graph::{cliques::max_weight_clique, DenseGraph};
///
/// let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
/// let best = max_weight_clique(&g, &[1, 1, 1, 10]);
/// assert_eq!(best.weight, 11); // {2, 3} beats the triangle {0, 1, 2}
/// ```
pub fn max_weight_clique(g: &DenseGraph, weights: &[u64]) -> WeightedClique {
    assert_eq!(
        weights.len(),
        g.vertex_count(),
        "one weight per vertex required"
    );
    max_weight_clique_containing(g, weights, &BitSet::new(g.vertex_count()))
        .expect("the empty seed is always a clique")
}

/// Reusable scratch for the seeded clique search: one candidate set and one
/// branch-order buffer per recursion depth, plus the incumbent clique.
///
/// The solver calls [`max_weight_clique_weight_containing`] on every fixed
/// comparability edge, deep inside the search inner loop; routing those
/// calls through a per-worker workspace keeps the steady-state path free of
/// heap allocations. The workspace sizes itself lazily to the queried
/// graph's vertex count and reallocates only when that count changes.
#[derive(Debug)]
pub struct CliqueWorkspace {
    /// Vertex count the buffers are currently sized for.
    n: usize,
    /// Candidate set per recursion depth (a clique has at most `n` vertices,
    /// so depth never exceeds `n`; one extra level for the empty tail).
    cands: Vec<BitSet>,
    /// Branch-order buffer per recursion depth.
    orders: Vec<Vec<usize>>,
    /// The all-vertices set, kept around to seed `cands[0]` by copy.
    full: BitSet,
    /// The clique currently being grown.
    current: BitSet,
    /// Vertices of the best clique found so far.
    best_vertices: BitSet,
    /// `expand` calls made by the most recent query (search-tree size).
    nodes: u64,
}

impl Default for CliqueWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl CliqueWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self {
            n: 0,
            cands: Vec::new(),
            orders: Vec::new(),
            full: BitSet::new(0),
            current: BitSet::new(0),
            best_vertices: BitSet::new(0),
            nodes: 0,
        }
    }

    /// Number of `expand` calls (search-tree nodes) in the most recent
    /// query. Pinned by regression tests: bound bookkeeping rewrites must
    /// not change what the search explores.
    pub fn nodes_expanded(&self) -> u64 {
        self.nodes
    }

    /// Ensures every buffer fits a graph of `n` vertices.
    fn fit(&mut self, n: usize) {
        if self.n == n && !self.cands.is_empty() {
            return;
        }
        self.n = n;
        self.cands = (0..=n).map(|_| BitSet::new(n)).collect();
        self.orders = (0..=n).map(|_| Vec::with_capacity(n)).collect();
        self.full = BitSet::full(n);
        self.current = BitSet::new(n);
        self.best_vertices = BitSet::new(n);
    }
}

/// Finds a maximum-weight clique of `g` that contains all vertices of `seed`.
///
/// Returns `None` if `seed` itself is not a clique. Used by the solver for
/// incremental C2 checks: after fixing a comparability edge `{u, v}`, only
/// cliques through that edge can newly violate the width bound.
pub fn max_weight_clique_containing(
    g: &DenseGraph,
    weights: &[u64],
    seed: &BitSet,
) -> Option<WeightedClique> {
    let mut ws = CliqueWorkspace::new();
    let weight = max_weight_clique_weight_containing(&mut ws, g, weights, seed)?;
    Some(WeightedClique {
        vertices: ws.best_vertices.clone(),
        weight,
    })
}

/// Weight-only variant of [`max_weight_clique_containing`] running entirely
/// inside a caller-provided [`CliqueWorkspace`].
///
/// Allocation-free once `ws` has been sized to `g.vertex_count()` (the
/// first call, or a call after the vertex count changed, pays a one-time
/// resize). The search itself is identical to the allocating variant:
/// branch-and-bound over common neighbors of the seed, candidates taken in
/// decreasing weight order.
pub fn max_weight_clique_weight_containing(
    ws: &mut CliqueWorkspace,
    g: &DenseGraph,
    weights: &[u64],
    seed: &BitSet,
) -> Option<u64> {
    if !g.is_clique(seed) {
        return None;
    }
    ws.fit(g.vertex_count());
    // Candidates: common neighbors of the whole seed.
    ws.cands[0].copy_from(&ws.full);
    for v in seed.iter() {
        ws.cands[0].intersect_with(g.neighbors(v));
    }
    ws.cands[0].difference_with(seed);

    let seed_weight = seed.weight_sum(weights);
    let root_remaining = ws.cands[0].weight_sum(weights);
    ws.current.copy_from(seed);
    ws.best_vertices.copy_from(seed);
    ws.nodes = 0;
    let mut best_weight = seed_weight;
    let cx = SearchCx { g, weights };
    expand(&cx, ws, 0, seed_weight, root_remaining, &mut best_weight);
    Some(best_weight)
}

/// Query-constant inputs of the clique search, bundled so `expand` passes
/// one pointer down the recursion.
struct SearchCx<'a> {
    g: &'a DenseGraph,
    weights: &'a [u64],
}

fn expand(
    cx: &SearchCx<'_>,
    ws: &mut CliqueWorkspace,
    depth: usize,
    current_weight: u64,
    mut remaining: u64,
    best_weight: &mut u64,
) {
    ws.nodes += 1;
    if current_weight > *best_weight {
        *best_weight = current_weight;
        ws.best_vertices.copy_from(&ws.current);
    }
    // Upper bound: everything remaining joins the clique. `remaining` is
    // the weight sum of `cands[depth]`, maintained incrementally — it only
    // changes when this frame removes a branched candidate below (children
    // touch `cands[depth + 1..]` only), so re-summing the set per candidate
    // (the old O(n²)-per-node behavior) is never needed.
    if current_weight + remaining <= *best_weight {
        return;
    }
    // Branch on candidates in decreasing weight order (ties by vertex id,
    // so exploration is deterministic): good incumbents early.
    let mut order = std::mem::take(&mut ws.orders[depth]);
    order.clear();
    order.extend(ws.cands[depth].iter());
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(cx.weights[v]), v));
    for &v in &order {
        // The bound is checked while `v` still counts toward `remaining`,
        // exactly as the old per-iteration re-sum did.
        if current_weight + remaining <= *best_weight {
            break;
        }
        // `remove` doubles as the membership test: earlier iterations of
        // this loop have already consumed their candidates.
        if !ws.cands[depth].remove(v) {
            continue;
        }
        remaining -= cx.weights[v];
        // Child candidates: survivors of this level that also see `v`; the
        // fused kernel builds the set and its remaining-weight bound in one
        // pass.
        let (head, tail) = ws.cands.split_at_mut(depth + 1);
        let child_remaining =
            tail[0].intersect_into_weight_sum(&head[depth], cx.g.neighbors(v), cx.weights);
        ws.current.insert(v);
        expand(
            cx,
            ws,
            depth + 1,
            current_weight + cx.weights[v],
            child_remaining,
            best_weight,
        );
        ws.current.remove(v);
    }
    ws.orders[depth] = order;
}

/// Finds a maximum-weight independent set (stable set) of `g`.
///
/// Equivalent to [`max_weight_clique`] on the complement graph; exposed
/// directly because packing-class condition C2 is phrased over stable sets.
pub fn max_weight_independent_set(g: &DenseGraph, weights: &[u64]) -> WeightedClique {
    max_weight_clique(&g.complement(), weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute_force_max_clique(g: &DenseGraph, weights: &[u64]) -> u64 {
        let n = g.vertex_count();
        assert!(n <= 20);
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let set: BitSet = {
                let mut s = BitSet::new(n);
                s.extend((0..n).filter(|&v| mask & (1 << v) != 0));
                s
            };
            if g.is_clique(&set) {
                best = best.max(set.iter().map(|v| weights[v]).sum());
            }
        }
        best
    }

    fn random_graph(n: usize, density: f64, seed: u64) -> DenseGraph {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = DenseGraph::new(n);
        for v in 1..n {
            for u in 0..v {
                if next() < density {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    #[test]
    fn triangle_with_heavy_pendant() {
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let best = max_weight_clique(&g, &[1, 1, 1, 10]);
        assert_eq!(best.weight, 11);
        assert!(best.vertices.contains(2) && best.vertices.contains(3));
    }

    #[test]
    fn empty_graph_max_clique_is_heaviest_vertex() {
        let g = DenseGraph::new(3);
        let best = max_weight_clique(&g, &[4, 9, 2]);
        assert_eq!(best.weight, 9);
        assert_eq!(best.vertices.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn zero_vertices() {
        let g = DenseGraph::new(0);
        let best = max_weight_clique(&g, &[]);
        assert_eq!(best.weight, 0);
    }

    #[test]
    fn seeded_search_restricts_to_supersets() {
        let g = DenseGraph::from_edges(5, [(0, 1), (1, 2), (0, 2), (3, 4)]);
        let mut seed = BitSet::new(5);
        seed.extend([3, 4]);
        let best =
            max_weight_clique_containing(&g, &[5, 5, 5, 1, 1], &seed).expect("{3,4} is an edge");
        assert_eq!(best.weight, 2);
    }

    #[test]
    fn seeded_search_rejects_non_clique_seed() {
        let g = DenseGraph::new(3);
        let mut seed = BitSet::new(3);
        seed.extend([0, 1]);
        assert!(max_weight_clique_containing(&g, &[1, 1, 1], &seed).is_none());
    }

    #[test]
    fn workspace_reuse_matches_fresh_searches() {
        // One workspace across differently-sized graphs and repeated
        // queries: every answer must match the allocating entry point.
        let mut ws = CliqueWorkspace::new();
        for n in [3usize, 5, 5, 4] {
            for seed_id in 0..40u64 {
                let g = random_graph(n, 0.6, seed_id);
                let weights: Vec<u64> = (0..n as u64).map(|v| 1 + (v * 5 + seed_id) % 9).collect();
                for u in 0..n {
                    for v in u + 1..n {
                        let mut seed = BitSet::new(n);
                        seed.extend([u, v]);
                        let fresh = max_weight_clique_containing(&g, &weights, &seed);
                        let reused =
                            max_weight_clique_weight_containing(&mut ws, &g, &weights, &seed);
                        assert_eq!(
                            fresh.map(|c| c.weight),
                            reused,
                            "n={n} seed={seed_id} ({u},{v})"
                        );
                    }
                }
            }
        }
    }

    /// The pre-incremental `expand`: recomputes the remaining-weight bound
    /// by re-summing the candidate set on entry and per branched candidate.
    /// Kept as the reference the incremental bookkeeping must match —
    /// weight for weight, node for node.
    #[allow(clippy::too_many_arguments)]
    fn reference_expand(
        g: &DenseGraph,
        weights: &[u64],
        cands: &mut Vec<BitSet>,
        current: &mut BitSet,
        depth: usize,
        current_weight: u64,
        best_weight: &mut u64,
        nodes: &mut u64,
    ) {
        *nodes += 1;
        if current_weight > *best_weight {
            *best_weight = current_weight;
        }
        let remaining: u64 = cands[depth].iter().map(|v| weights[v]).sum();
        if current_weight + remaining <= *best_weight {
            return;
        }
        let mut order: Vec<usize> = cands[depth].iter().collect();
        order.sort_unstable_by_key(|&v| (std::cmp::Reverse(weights[v]), v));
        for &v in &order {
            let remaining_now: u64 = cands[depth].iter().map(|u| weights[u]).sum();
            if current_weight + remaining_now <= *best_weight {
                break;
            }
            if !cands[depth].contains(v) {
                continue;
            }
            cands[depth].remove(v);
            let (head, tail) = cands.split_at_mut(depth + 1);
            tail[0].copy_from(&head[depth]);
            tail[0].intersect_with(g.neighbors(v));
            current.insert(v);
            reference_expand(
                g,
                weights,
                cands,
                current,
                depth + 1,
                current_weight + weights[v],
                best_weight,
                nodes,
            );
            current.remove(v);
        }
    }

    fn reference_search(g: &DenseGraph, weights: &[u64]) -> (u64, u64) {
        let n = g.vertex_count();
        let mut cands: Vec<BitSet> = (0..=n).map(|_| BitSet::new(n)).collect();
        cands[0] = BitSet::full(n);
        let mut current = BitSet::new(n);
        let mut best = 0;
        let mut nodes = 0;
        reference_expand(
            g,
            weights,
            &mut cands,
            &mut current,
            0,
            0,
            &mut best,
            &mut nodes,
        );
        (best, nodes)
    }

    #[test]
    fn incremental_bound_is_search_neutral() {
        // The incremental remaining-weight bookkeeping must explore exactly
        // the tree the old per-candidate re-sum explored: same best weight
        // AND same node count on every instance.
        let mut ws = CliqueWorkspace::new();
        let empty_seeds: Vec<BitSet> = (3..=12).map(BitSet::new).collect();
        for n in 3usize..=12 {
            for seed_id in 0..30u64 {
                let g = random_graph(n, 0.55, seed_id);
                let weights: Vec<u64> = (0..n as u64).map(|v| 1 + (v * 7 + seed_id) % 13).collect();
                let (ref_best, ref_nodes) = reference_search(&g, &weights);
                let got =
                    max_weight_clique_weight_containing(&mut ws, &g, &weights, &empty_seeds[n - 3])
                        .unwrap();
                assert_eq!(got, ref_best, "weight n={n} seed={seed_id}");
                assert_eq!(
                    ws.nodes_expanded(),
                    ref_nodes,
                    "node count n={n} seed={seed_id}"
                );
            }
        }
    }

    #[test]
    fn pinned_search_tree_sizes() {
        // Exact node counts on fixed instances: any future change to the
        // bound, the branch order, or the candidate bookkeeping that moves
        // these numbers is changing what the search explores.
        let mut ws = CliqueWorkspace::new();
        let mut pinned = Vec::new();
        for (n, seed_id) in [(8usize, 1u64), (10, 2), (12, 3), (14, 4)] {
            let g = random_graph(n, 0.6, seed_id);
            let weights: Vec<u64> = (0..n as u64).map(|v| 1 + (v * 7 + seed_id) % 13).collect();
            let best = max_weight_clique_weight_containing(&mut ws, &g, &weights, &BitSet::new(n))
                .unwrap();
            pinned.push((best, ws.nodes_expanded()));
        }
        assert_eq!(pinned, PINNED);
    }

    /// `(best_weight, nodes_expanded)` per pinned instance, cross-checked
    /// against `reference_search` in `pinned_stats_match_reference`.
    const PINNED: [(u64, u64); 4] = [(32, 7), (28, 9), (40, 10), (42, 24)];

    #[test]
    fn pinned_stats_match_reference() {
        let computed: Vec<(u64, u64)> = [(8usize, 1u64), (10, 2), (12, 3), (14, 4)]
            .into_iter()
            .map(|(n, seed_id)| {
                let g = random_graph(n, 0.6, seed_id);
                let weights: Vec<u64> = (0..n as u64).map(|v| 1 + (v * 7 + seed_id) % 13).collect();
                reference_search(&g, &weights)
            })
            .collect();
        assert_eq!(computed, PINNED);
    }

    #[test]
    fn independent_set_on_path() {
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let best = max_weight_independent_set(&g, &[2, 3, 3, 2]);
        // Either {1, 3} = 5 or {0, 2} = 5 or {0, 3} = 4; best is 5.
        assert_eq!(best.weight, 5);
        assert!(g.is_independent_set(&best.vertices));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn matches_brute_force(n in 1usize..10, seed in 0u64..200, d in 0.2f64..0.9) {
            let g = random_graph(n, d, seed);
            let weights: Vec<u64> = (0..n as u64).map(|v| 1 + (v * 7 + seed) % 13).collect();
            let best = max_weight_clique(&g, &weights);
            prop_assert!(g.is_clique(&best.vertices));
            prop_assert_eq!(
                best.weight,
                brute_force_max_clique(&g, &weights)
            );
            prop_assert_eq!(best.weight, best.vertices.iter().map(|v| weights[v]).sum::<u64>());
        }
    }
}
