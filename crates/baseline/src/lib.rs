//! Baseline geometric solver — the comparison point of the paper.
//!
//! Section 1 of the paper argues that standard combinatorial techniques —
//! 0/1 grid ILPs in the style of Beasley and Hadjiconstantinou–Christofides
//! (the paper's refs. 2 and 15), or direct geometric enumeration — cannot handle
//! three-dimensional instances of interesting size, and that precedence
//! constraints make them *harder* while packing classes make the problem
//! *easier*. This crate implements that baseline honestly so the claim can
//! be measured (bench `baseline_vs_packing`):
//!
//! * [`GeometricSolver`] — exact branch-and-bound over **normal
//!   patterns**: tasks are placed one by one, each at coordinates that are
//!   subset sums of the other tasks' sizes (the standard normal-pattern
//!   argument shows this loses no solutions), with precedence and overlap
//!   checked geometrically;
//! * [`bottom_left_decreasing`] — the classic one-pass heuristic, as a
//!   reference for the heuristic stage.
//!
//! The solver is exact, so it doubles as an independent oracle for testing
//! the packing-class solver on small instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use recopack_model::{Dim, Instance, Placement};

/// Outcome of the baseline solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineOutcome {
    /// A feasible packing, geometrically verified.
    Feasible(Placement),
    /// Exhaustive enumeration found nothing.
    Infeasible,
    /// The node budget ran out.
    NodeLimit,
}

impl BaselineOutcome {
    /// Whether this outcome is feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Self::Feasible(_))
    }
}

/// Exact geometric branch-and-bound over normal patterns.
///
/// Places tasks in a fixed order (largest volume first). Each task is tried
/// at every *normal pattern* coordinate triple: in each dimension, every
/// subset sum of the other tasks' sizes that keeps the task inside the
/// container. Normal-pattern enumeration is complete for orthogonal
/// packing (any feasible packing normalizes by sliding boxes toward the
/// origin until each coordinate is a sum of sizes of blocking boxes), and
/// it remains complete under precedence constraints: a successor's time
/// slide is blocked either geometrically or by a predecessor's end, and
/// both stops are subset sums of durations.
///
/// # Panics
///
/// Panics if a container dimension exceeds `2^20` cells — the dynamic
/// program over positions is meant for the paper-scale instances this
/// baseline exists to be measured on.
///
/// # Example
///
/// ```
/// use recopack_baseline::GeometricSolver;
/// use recopack_model::{Chip, Instance, Task};
///
/// let instance = Instance::builder()
///     .chip(Chip::square(2))
///     .horizon(4)
///     .task(Task::new("a", 2, 2, 2))
///     .task(Task::new("b", 2, 2, 2))
///     .precedence("a", "b")
///     .build()?;
/// assert!(GeometricSolver::new(&instance).solve().is_feasible());
/// # Ok::<(), recopack_model::BuildError>(())
/// ```
#[derive(Debug)]
pub struct GeometricSolver<'a> {
    instance: &'a Instance,
    node_limit: Option<u64>,
    nodes: u64,
}

impl<'a> GeometricSolver<'a> {
    /// Creates a solver without a node limit.
    pub fn new(instance: &'a Instance) -> Self {
        Self {
            instance,
            node_limit: None,
            nodes: 0,
        }
    }

    /// Limits the number of placement attempts.
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Number of placement attempts made by the last [`solve`](Self::solve).
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Runs the exhaustive search.
    pub fn solve(&mut self) -> BaselineOutcome {
        self.nodes = 0;
        let n = self.instance.task_count();
        let container = self.instance.container();
        for t in self.instance.tasks() {
            for d in Dim::ALL {
                if t.size(d) > container[d.index()] {
                    return BaselineOutcome::Infeasible;
                }
            }
        }
        // Static time windows from the precedence structure: a task can
        // never start before its heaviest predecessor chain nor so late that
        // its heaviest successor chain overruns the horizon. Both bounds are
        // properties of the instance, so filtering candidate start times
        // against them loses no packings.
        let durations = self.instance.sizes(Dim::Time);
        let pre = self.instance.precedence();
        let earliest_starts = pre
            .earliest_starts(&durations)
            .expect("instances are acyclic");
        let latest_starts = pre
            .latest_starts(&durations, container[2])
            .expect("instances are acyclic");
        let mut windows = Vec::with_capacity(n);
        for i in 0..n {
            match latest_starts[i] {
                // The tail of successors alone overruns the horizon.
                None => return BaselineOutcome::Infeasible,
                Some(l) if earliest_starts[i] > l => return BaselineOutcome::Infeasible,
                Some(l) => windows.push((earliest_starts[i], l)),
            }
        }
        // Place big tasks first, but never a task before its predecessors:
        // with predecessors already placed, the earliest-start pruning in
        // `place` bites instead of discovering the violation levels deeper.
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut placed_mask = vec![false; n];
        while order.len() < n {
            let next = (0..n)
                .filter(|&i| !placed_mask[i])
                .filter(|&i| pre.predecessors(i).iter().all(|p| placed_mask[p]))
                .max_by_key(|&i| self.instance.task(i).volume())
                .expect("acyclic instances always have a source");
            placed_mask[next] = true;
            order.push(next);
        }
        // Normal patterns depend only on the task, not on the partial
        // placement — computing them per node turned every placement attempt
        // into a fresh subset-sum DP and dominated the runtime on infeasible
        // instances.
        let patterns: Vec<[Vec<u64>; 3]> = (0..n)
            .map(|task| {
                let t = self.instance.task(task);
                let tsize = [t.width(), t.height(), t.duration()];
                recopack_model::Dim::ALL
                    .map(|d| self.normal_patterns(task, d, container[d.index()], tsize[d.index()]))
            })
            .collect();
        let mut origins: Vec<Option<[u64; 3]>> = vec![None; n];
        match self.place(&order, &patterns, &windows, 0, &mut origins) {
            Some(true) => {
                let placement = Placement::new(
                    origins
                        .into_iter()
                        .map(|o| o.expect("all placed"))
                        .collect(),
                    self.instance,
                );
                debug_assert_eq!(placement.verify(self.instance), Ok(()));
                BaselineOutcome::Feasible(placement)
            }
            Some(false) => BaselineOutcome::Infeasible,
            None => BaselineOutcome::NodeLimit,
        }
    }

    /// Subset sums of the other tasks' `dim`-sizes that keep a `size`-wide
    /// task within `cap`.
    fn normal_patterns(
        &self,
        task: usize,
        d: recopack_model::Dim,
        cap: u64,
        size: u64,
    ) -> Vec<u64> {
        let Some(max_pos) = cap.checked_sub(size) else {
            return Vec::new();
        };
        assert!(max_pos < (1 << 20), "container too large for the baseline");
        let max_pos = max_pos as usize;
        let mut reachable = vec![false; max_pos + 1];
        reachable[0] = true;
        for (i, other) in self.instance.tasks().iter().enumerate() {
            if i == task {
                continue;
            }
            let s = other.size(d) as usize;
            if s == 0 || s > max_pos {
                continue;
            }
            for pos in (s..=max_pos).rev() {
                reachable[pos] = reachable[pos] || reachable[pos - s];
            }
        }
        reachable
            .iter()
            .enumerate()
            .filter_map(|(pos, &r)| r.then_some(pos as u64))
            .collect()
    }

    /// `Some(true)` placed everything, `Some(false)` exhausted, `None`
    /// budget ran out.
    fn place(
        &mut self,
        order: &[usize],
        patterns: &[[Vec<u64>; 3]],
        windows: &[(u64, u64)],
        k: usize,
        origins: &mut Vec<Option<[u64; 3]>>,
    ) -> Option<bool> {
        let Some(&task) = order.get(k) else {
            return Some(true);
        };
        let t = self.instance.task(task);
        let tsize = [t.width(), t.height(), t.duration()];
        let coords = &patterns[task];
        let pre = self.instance.precedence();
        // Sound time pruning: any completion starts `task` inside its static
        // precedence window, no earlier than the latest end of its
        // already-placed predecessors, and with room before its
        // already-placed successors.
        let mut earliest = windows[task].0;
        let mut latest_end = u64::MAX;
        for (i, o) in origins.iter().enumerate() {
            let Some(o) = o else { continue };
            if pre.has_arc(i, task) {
                earliest = earliest.max(o[2] + self.instance.task(i).duration());
            }
            if pre.has_arc(task, i) {
                latest_end = latest_end.min(o[2]);
            }
        }
        // Placed tasks that could block `task` spatially, precomputed once
        // per (x, y) column instead of per time slot.
        let placed: Vec<(usize, [u64; 3], [u64; 3])> = origins
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                o.map(|o| {
                    let other = self.instance.task(i);
                    (i, o, [other.width(), other.height(), other.duration()])
                })
            })
            .collect();
        for &ts in &coords[2] {
            if ts < earliest || ts > windows[task].1 || ts + tsize[2] > latest_end {
                continue;
            }
            for &x in &coords[0] {
                'column: for &y in &coords[1] {
                    self.nodes += 1;
                    if let Some(limit) = self.node_limit {
                        if self.nodes > limit {
                            return None;
                        }
                    }
                    let candidate = [x, y, ts];
                    // Overlap with placed tasks.
                    for &(_, o, osize) in &placed {
                        let collides = (0..3).all(|d| {
                            candidate[d] < o[d] + osize[d] && o[d] < candidate[d] + tsize[d]
                        });
                        if collides {
                            continue 'column;
                        }
                    }
                    origins[task] = Some(candidate);
                    match self.place(order, patterns, windows, k + 1, origins) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => return None,
                    }
                    origins[task] = None;
                }
            }
        }
        Some(false)
    }
}

/// One-pass bottom-left-decreasing heuristic: tasks by decreasing area, each
/// at its earliest feasible canonical position. Returns a verified placement
/// or `None`; failure proves nothing (reference heuristic only).
pub fn bottom_left_decreasing(instance: &Instance) -> Option<Placement> {
    let n = instance.task_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(instance.task(i).area()));
    // Reuse the exact solver's machinery but without backtracking: take the
    // first canonical slot per task, in time-lexicographic order.
    let container = instance.container();
    let mut origins: Vec<Option<[u64; 3]>> = vec![None; n];
    'tasks: for &task in &order {
        let t = instance.task(task);
        let tsize = [t.width(), t.height(), t.duration()];
        let mut coords: [Vec<u64>; 3] = [vec![0], vec![0], vec![0]];
        for (i, o) in origins.iter().enumerate() {
            let Some(o) = o else { continue };
            let other = instance.task(i);
            let osize = [other.width(), other.height(), other.duration()];
            for d in 0..3 {
                coords[d].push(o[d] + osize[d]);
            }
        }
        for c in &mut coords {
            c.sort_unstable();
            c.dedup();
        }
        // earliest time first, then bottom-left
        for &ts in &coords[2] {
            for &y in &coords[1] {
                for &x in &coords[0] {
                    let candidate = [x, y, ts];
                    if (0..3).any(|d| candidate[d] + tsize[d] > container[d]) {
                        continue;
                    }
                    let ok_overlap = origins.iter().enumerate().all(|(i, o)| {
                        o.is_none_or(|o| {
                            let other = instance.task(i);
                            let osize = [other.width(), other.height(), other.duration()];
                            !(0..3).all(|d| {
                                candidate[d] < o[d] + osize[d] && o[d] < candidate[d] + tsize[d]
                            })
                        })
                    });
                    let ok_precedence = origins.iter().enumerate().all(|(i, o)| {
                        o.is_none_or(|o| {
                            let pre = instance.precedence();
                            let before_ok = !pre.has_arc(i, task)
                                || o[2] + instance.task(i).duration() <= candidate[2];
                            let after_ok = !pre.has_arc(task, i) || candidate[2] + tsize[2] <= o[2];
                            before_ok && after_ok
                        })
                    });
                    if ok_overlap && ok_precedence {
                        origins[task] = Some(candidate);
                        continue 'tasks;
                    }
                }
            }
        }
        return None;
    }
    let placement = Placement::new(
        origins
            .into_iter()
            .map(|o| o.expect("all placed"))
            .collect(),
        instance,
    );
    placement.verify(instance).is_ok().then_some(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{Chip, Task};

    fn pair(horizon: u64) -> Instance {
        Instance::builder()
            .chip(Chip::square(2))
            .horizon(horizon)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .precedence("a", "b")
            .build()
            .expect("valid")
    }

    #[test]
    fn exact_on_tiny_instances() {
        assert!(GeometricSolver::new(&pair(4)).solve().is_feasible());
        assert_eq!(
            GeometricSolver::new(&pair(3)).solve(),
            BaselineOutcome::Infeasible
        );
    }

    #[test]
    fn respects_precedence() {
        let i = pair(4);
        let BaselineOutcome::Feasible(p) = GeometricSolver::new(&i).solve() else {
            panic!("feasible");
        };
        assert!(p.task_box(0).end(Dim::Time) <= p.task_box(1).start(Dim::Time));
    }

    #[test]
    fn node_limit_stops_search() {
        let i = Instance::builder()
            .chip(Chip::square(6))
            .horizon(12)
            .tasks((0..7).map(|k| Task::new(format!("t{k}"), 2, 2, 2)))
            .build()
            .expect("valid");
        // Feasible and found quickly, so use an absurdly small limit.
        let outcome = GeometricSolver::new(&i).with_node_limit(1).solve();
        assert!(matches!(
            outcome,
            BaselineOutcome::NodeLimit | BaselineOutcome::Feasible(_)
        ));
    }

    #[test]
    fn heuristic_agrees_when_it_succeeds() {
        let i = pair(4);
        let p = bottom_left_decreasing(&i).expect("simple chain");
        assert_eq!(p.verify(&i), Ok(()));
    }

    #[test]
    fn oversized_task_infeasible() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(2)
            .task(Task::new("big", 3, 1, 1))
            .build()
            .expect("valid");
        assert_eq!(
            GeometricSolver::new(&i).solve(),
            BaselineOutcome::Infeasible
        );
    }

    /// Regression: this infeasible instance (random sweep, seed 1025) took
    /// ~9M placement attempts before normal patterns were hoisted and
    /// precedence time windows added; the critical path t1→t4→t5 (length 8 >
    /// horizon 6) now refutes it before any placement attempt.
    #[test]
    fn infeasible_chain_refuted_without_enumeration() {
        let i = Instance::builder()
            .chip(Chip::new(4, 6))
            .horizon(6)
            .task(Task::new("t0", 1, 3, 2))
            .task(Task::new("t1", 3, 1, 2))
            .task(Task::new("t2", 2, 3, 1))
            .task(Task::new("t3", 2, 2, 3))
            .task(Task::new("t4", 2, 1, 3))
            .task(Task::new("t5", 2, 1, 3))
            .precedence("t0", "t2")
            .precedence("t1", "t3")
            .precedence("t1", "t4")
            .precedence("t4", "t5")
            .build()
            .expect("valid");
        let mut solver = GeometricSolver::new(&i).with_node_limit(10_000);
        assert_eq!(solver.solve(), BaselineOutcome::Infeasible);
    }

    /// Regression: this feasible instance (random sweep, seed 1039) took
    /// ~94M placement attempts when the volume-descending order placed
    /// successors before their predecessors, defeating the earliest-start
    /// pruning; the precedence-respecting order decides it in a handful.
    #[test]
    fn feasible_sweep_instance_found_within_budget() {
        let i = Instance::builder()
            .chip(Chip::new(6, 3))
            .horizon(13)
            .task(Task::new("t0", 2, 1, 3))
            .task(Task::new("t1", 2, 1, 1))
            .task(Task::new("t2", 3, 2, 3))
            .task(Task::new("t3", 1, 3, 3))
            .task(Task::new("t4", 2, 1, 3))
            .task(Task::new("t5", 2, 2, 3))
            .precedence("t0", "t1")
            .precedence("t0", "t5")
            .precedence("t1", "t2")
            .precedence("t1", "t3")
            .precedence("t4", "t5")
            .build()
            .expect("valid");
        let mut solver = GeometricSolver::new(&i).with_node_limit(10_000);
        assert!(solver.solve().is_feasible());
    }

    #[test]
    fn empty_instance_feasible() {
        let i = Instance::builder()
            .chip(Chip::square(1))
            .horizon(1)
            .build()
            .expect("valid");
        assert!(GeometricSolver::new(&i).solve().is_feasible());
    }
}
