//! Baseline geometric solver — the comparison point of the paper.
//!
//! Section 1 of the paper argues that standard combinatorial techniques —
//! 0/1 grid ILPs in the style of Beasley and Hadjiconstantinou–Christofides
//! (the paper's refs. 2 and 15), or direct geometric enumeration — cannot handle
//! three-dimensional instances of interesting size, and that precedence
//! constraints make them *harder* while packing classes make the problem
//! *easier*. This crate implements that baseline honestly so the claim can
//! be measured (bench `baseline_vs_packing`):
//!
//! * [`GeometricSolver`] — exact branch-and-bound over **normal
//!   patterns**: tasks are placed one by one, each at coordinates that are
//!   subset sums of the other tasks' sizes (the standard normal-pattern
//!   argument shows this loses no solutions), with precedence and overlap
//!   checked geometrically;
//! * [`bottom_left_decreasing`] — the classic one-pass heuristic, as a
//!   reference for the heuristic stage.
//!
//! The solver is exact, so it doubles as an independent oracle for testing
//! the packing-class solver on small instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use recopack_model::{Dim, Instance, Placement};

/// Outcome of the baseline solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineOutcome {
    /// A feasible packing, geometrically verified.
    Feasible(Placement),
    /// Exhaustive enumeration found nothing.
    Infeasible,
    /// The node budget ran out.
    NodeLimit,
}

impl BaselineOutcome {
    /// Whether this outcome is feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Self::Feasible(_))
    }
}

/// Exact geometric branch-and-bound over normal patterns.
///
/// Places tasks in a fixed order (largest volume first). Each task is tried
/// at every *normal pattern* coordinate triple: in each dimension, every
/// subset sum of the other tasks' sizes that keeps the task inside the
/// container. Normal-pattern enumeration is complete for orthogonal
/// packing (any feasible packing normalizes by sliding boxes toward the
/// origin until each coordinate is a sum of sizes of blocking boxes), and
/// it remains complete under precedence constraints: a successor's time
/// slide is blocked either geometrically or by a predecessor's end, and
/// both stops are subset sums of durations.
///
/// # Panics
///
/// Panics if a container dimension exceeds `2^20` cells — the dynamic
/// program over positions is meant for the paper-scale instances this
/// baseline exists to be measured on.
///
/// # Example
///
/// ```
/// use recopack_baseline::GeometricSolver;
/// use recopack_model::{Chip, Instance, Task};
///
/// let instance = Instance::builder()
///     .chip(Chip::square(2))
///     .horizon(4)
///     .task(Task::new("a", 2, 2, 2))
///     .task(Task::new("b", 2, 2, 2))
///     .precedence("a", "b")
///     .build()?;
/// assert!(GeometricSolver::new(&instance).solve().is_feasible());
/// # Ok::<(), recopack_model::BuildError>(())
/// ```
#[derive(Debug)]
pub struct GeometricSolver<'a> {
    instance: &'a Instance,
    node_limit: Option<u64>,
    nodes: u64,
}

impl<'a> GeometricSolver<'a> {
    /// Creates a solver without a node limit.
    pub fn new(instance: &'a Instance) -> Self {
        Self {
            instance,
            node_limit: None,
            nodes: 0,
        }
    }

    /// Limits the number of placement attempts.
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Number of placement attempts made by the last [`solve`](Self::solve).
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Runs the exhaustive search.
    pub fn solve(&mut self) -> BaselineOutcome {
        self.nodes = 0;
        let n = self.instance.task_count();
        let container = self.instance.container();
        for t in self.instance.tasks() {
            for d in Dim::ALL {
                if t.size(d) > container[d.index()] {
                    return BaselineOutcome::Infeasible;
                }
            }
        }
        // Place big tasks first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.instance.task(i).volume()));
        let mut origins: Vec<Option<[u64; 3]>> = vec![None; n];
        match self.place(&order, 0, &mut origins) {
            Some(true) => {
                let placement = Placement::new(
                    origins.into_iter().map(|o| o.expect("all placed")).collect(),
                    self.instance,
                );
                debug_assert_eq!(placement.verify(self.instance), Ok(()));
                BaselineOutcome::Feasible(placement)
            }
            Some(false) => BaselineOutcome::Infeasible,
            None => BaselineOutcome::NodeLimit,
        }
    }

    /// Subset sums of the other tasks' `dim`-sizes that keep a `size`-wide
    /// task within `cap`.
    fn normal_patterns(&self, task: usize, dim: usize, cap: u64, size: u64) -> Vec<u64> {
        let Some(max_pos) = cap.checked_sub(size) else {
            return Vec::new();
        };
        assert!(max_pos < (1 << 20), "container too large for the baseline");
        let max_pos = max_pos as usize;
        let mut reachable = vec![false; max_pos + 1];
        reachable[0] = true;
        let d = recopack_model::Dim::from_index(dim);
        for (i, other) in self.instance.tasks().iter().enumerate() {
            if i == task {
                continue;
            }
            let s = other.size(d) as usize;
            if s == 0 || s > max_pos {
                continue;
            }
            for pos in (s..=max_pos).rev() {
                reachable[pos] = reachable[pos] || reachable[pos - s];
            }
        }
        reachable
            .iter()
            .enumerate()
            .filter_map(|(pos, &r)| r.then_some(pos as u64))
            .collect()
    }

    /// `Some(true)` placed everything, `Some(false)` exhausted, `None`
    /// budget ran out.
    fn place(
        &mut self,
        order: &[usize],
        k: usize,
        origins: &mut Vec<Option<[u64; 3]>>,
    ) -> Option<bool> {
        let Some(&task) = order.get(k) else {
            return Some(true);
        };
        let container = self.instance.container();
        let t = self.instance.task(task);
        let tsize = [t.width(), t.height(), t.duration()];
        let coords: [Vec<u64>; 3] =
            std::array::from_fn(|d| self.normal_patterns(task, d, container[d], tsize[d]));
        for &x in &coords[0] {
            for &y in &coords[1] {
                'time: for &ts in &coords[2] {
                    self.nodes += 1;
                    if let Some(limit) = self.node_limit {
                        if self.nodes > limit {
                            return None;
                        }
                    }
                    let candidate = [x, y, ts];
                    if (0..3).any(|d| candidate[d] + tsize[d] > container[d]) {
                        continue;
                    }
                    // Overlap with placed tasks.
                    for (i, o) in origins.iter().enumerate() {
                        let Some(o) = o else { continue };
                        let other = self.instance.task(i);
                        let osize = [other.width(), other.height(), other.duration()];
                        let collides = (0..3).all(|d| {
                            candidate[d] < o[d] + osize[d] && o[d] < candidate[d] + tsize[d]
                        });
                        if collides {
                            continue 'time;
                        }
                    }
                    // Precedence against placed tasks.
                    for (i, o) in origins.iter().enumerate() {
                        let Some(o) = o else { continue };
                        let pre = self.instance.precedence();
                        if pre.has_arc(i, task)
                            && o[2] + self.instance.task(i).duration() > candidate[2]
                        {
                            continue 'time;
                        }
                        if pre.has_arc(task, i) && candidate[2] + tsize[2] > o[2] {
                            continue 'time;
                        }
                    }
                    origins[task] = Some(candidate);
                    match self.place(order, k + 1, origins) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => return None,
                    }
                    origins[task] = None;
                }
            }
        }
        Some(false)
    }
}

/// One-pass bottom-left-decreasing heuristic: tasks by decreasing area, each
/// at its earliest feasible canonical position. Returns a verified placement
/// or `None`; failure proves nothing (reference heuristic only).
pub fn bottom_left_decreasing(instance: &Instance) -> Option<Placement> {
    let n = instance.task_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(instance.task(i).area()));
    // Reuse the exact solver's machinery but without backtracking: take the
    // first canonical slot per task, in time-lexicographic order.
    let container = instance.container();
    let mut origins: Vec<Option<[u64; 3]>> = vec![None; n];
    'tasks: for &task in &order {
        let t = instance.task(task);
        let tsize = [t.width(), t.height(), t.duration()];
        let mut coords: [Vec<u64>; 3] = [vec![0], vec![0], vec![0]];
        for (i, o) in origins.iter().enumerate() {
            let Some(o) = o else { continue };
            let other = instance.task(i);
            let osize = [other.width(), other.height(), other.duration()];
            for d in 0..3 {
                coords[d].push(o[d] + osize[d]);
            }
        }
        for c in &mut coords {
            c.sort_unstable();
            c.dedup();
        }
        // earliest time first, then bottom-left
        for &ts in &coords[2] {
            for &y in &coords[1] {
                for &x in &coords[0] {
                    let candidate = [x, y, ts];
                    if (0..3).any(|d| candidate[d] + tsize[d] > container[d]) {
                        continue;
                    }
                    let ok_overlap = origins.iter().enumerate().all(|(i, o)| {
                        o.map_or(true, |o| {
                            let other = instance.task(i);
                            let osize = [other.width(), other.height(), other.duration()];
                            !(0..3).all(|d| {
                                candidate[d] < o[d] + osize[d] && o[d] < candidate[d] + tsize[d]
                            })
                        })
                    });
                    let ok_precedence = origins.iter().enumerate().all(|(i, o)| {
                        o.map_or(true, |o| {
                            let pre = instance.precedence();
                            let before_ok = !pre.has_arc(i, task)
                                || o[2] + instance.task(i).duration() <= candidate[2];
                            let after_ok =
                                !pre.has_arc(task, i) || candidate[2] + tsize[2] <= o[2];
                            before_ok && after_ok
                        })
                    });
                    if ok_overlap && ok_precedence {
                        origins[task] = Some(candidate);
                        continue 'tasks;
                    }
                }
            }
        }
        return None;
    }
    let placement = Placement::new(
        origins.into_iter().map(|o| o.expect("all placed")).collect(),
        instance,
    );
    placement.verify(instance).is_ok().then_some(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{Chip, Task};

    fn pair(horizon: u64) -> Instance {
        Instance::builder()
            .chip(Chip::square(2))
            .horizon(horizon)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .precedence("a", "b")
            .build()
            .expect("valid")
    }

    #[test]
    fn exact_on_tiny_instances() {
        assert!(GeometricSolver::new(&pair(4)).solve().is_feasible());
        assert_eq!(
            GeometricSolver::new(&pair(3)).solve(),
            BaselineOutcome::Infeasible
        );
    }

    #[test]
    fn respects_precedence() {
        let i = pair(4);
        let BaselineOutcome::Feasible(p) = GeometricSolver::new(&i).solve() else {
            panic!("feasible");
        };
        assert!(p.task_box(0).end(Dim::Time) <= p.task_box(1).start(Dim::Time));
    }

    #[test]
    fn node_limit_stops_search() {
        let i = Instance::builder()
            .chip(Chip::square(6))
            .horizon(12)
            .tasks((0..7).map(|k| Task::new(format!("t{k}"), 2, 2, 2)))
            .build()
            .expect("valid");
        // Feasible and found quickly, so use an absurdly small limit.
        let outcome = GeometricSolver::new(&i).with_node_limit(1).solve();
        assert!(matches!(
            outcome,
            BaselineOutcome::NodeLimit | BaselineOutcome::Feasible(_)
        ));
    }

    #[test]
    fn heuristic_agrees_when_it_succeeds() {
        let i = pair(4);
        let p = bottom_left_decreasing(&i).expect("simple chain");
        assert_eq!(p.verify(&i), Ok(()));
    }

    #[test]
    fn oversized_task_infeasible() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(2)
            .task(Task::new("big", 3, 1, 1))
            .build()
            .expect("valid");
        assert_eq!(
            GeometricSolver::new(&i).solve(),
            BaselineOutcome::Infeasible
        );
    }

    #[test]
    fn empty_instance_feasible() {
        let i = Instance::builder()
            .chip(Chip::square(1))
            .horizon(1)
            .build()
            .expect("valid");
        assert!(GeometricSolver::new(&i).solve().is_feasible());
    }
}
