//! Pareto-optimal chip-size / execution-time tradeoffs (paper Fig. 7).

use recopack_model::{Chip, Dim, Instance, Placement};

use crate::config::{SolverConfig, SolverStats};
use crate::spp::Spp;

/// One Pareto-optimal (square chip side, makespan) point with its witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParetoPoint {
    /// Square chip side `h` (chip is `h × h`).
    pub side: u64,
    /// Minimal execution time on that chip.
    pub makespan: u64,
    /// A verified placement achieving the point.
    pub placement: Placement,
}

/// Computes all Pareto-optimal (side, makespan) pairs by sweeping square
/// chips from the smallest usable side upward and solving SPP at each, until
/// the global time lower bound is reached.
///
/// The instance's own chip and horizon are ignored. Apply
/// [`Instance::without_precedence`] first to get the paper's dashed curve.
///
/// Returns an empty vector for instances without tasks and `None` if any
/// SPP solve hits the configured resource limits.
///
/// # Example
///
/// ```
/// use recopack_core::{pareto_front, SolverConfig};
/// use recopack_model::{Chip, Instance, Task};
///
/// let instance = Instance::builder()
///     .chip(Chip::square(1))
///     .horizon(1)
///     .task(Task::new("a", 2, 2, 2))
///     .task(Task::new("b", 2, 2, 2))
///     .build()?;
/// let front = pareto_front(&instance, &SolverConfig::default()).expect("no limits set");
/// // 2x2 chip -> serialize (T = 4); 4x4 chip -> run in parallel (T = 2).
/// let pairs: Vec<(u64, u64)> = front.iter().map(|p| (p.side, p.makespan)).collect();
/// assert_eq!(pairs, vec![(2, 4), (4, 2)]);
/// # Ok::<(), recopack_model::BuildError>(())
/// ```
pub fn pareto_front(instance: &Instance, config: &SolverConfig) -> Option<Vec<ParetoPoint>> {
    pareto_front_with_stats(instance, config).map(|(front, _, _)| front)
}

/// Like [`pareto_front`], additionally reporting the solver statistics
/// accumulated over the whole sweep and the number of OPP decision problems
/// solved along the way.
pub fn pareto_front_with_stats(
    instance: &Instance,
    config: &SolverConfig,
) -> Option<(Vec<ParetoPoint>, SolverStats, u32)> {
    let mut stats = SolverStats::default();
    let mut decisions = 0;
    if instance.task_count() == 0 {
        return Some((Vec::new(), stats, decisions));
    }
    let h_min = instance
        .tasks()
        .iter()
        .map(|t| t.width().max(t.height()))
        .max()
        .expect("nonempty");
    // No chip can beat the critical path or the longest task.
    let t_floor = instance
        .critical_path_length()
        .max(instance.sizes(Dim::Time).into_iter().max().unwrap_or(0));

    let mut front = Vec::new();
    let mut prev_t: Option<u64> = None;
    let mut side = h_min;
    loop {
        let candidate = instance.clone().with_chip(Chip::square(side));
        let result = Spp::new(&candidate).with_config(config.clone()).solve()?;
        stats.accumulate(&result.stats);
        decisions += result.decisions;
        let improved = prev_t.is_none_or(|p| result.makespan < p);
        if improved {
            front.push(ParetoPoint {
                side,
                makespan: result.makespan,
                placement: result.placement,
            });
            prev_t = Some(result.makespan);
        }
        if prev_t == Some(t_floor) {
            break;
        }
        side += 1;
    }
    Some((front, stats, decisions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::Task;

    #[test]
    fn front_is_strictly_decreasing_in_time() {
        let i = Instance::builder()
            .chip(Chip::square(1))
            .horizon(1)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .task(Task::new("c", 2, 2, 2))
            .build()
            .expect("valid");
        let front = pareto_front(&i, &SolverConfig::default()).expect("no limits");
        for w in front.windows(2) {
            assert!(w[0].side < w[1].side);
            assert!(w[0].makespan > w[1].makespan);
        }
        // 3 independent 2x2x2 tasks: (2,6) serial; a 4x4 chip already holds
        // three 2x2 footprints at once, so (4,2) is the parallel point.
        let pairs: Vec<(u64, u64)> = front.iter().map(|p| (p.side, p.makespan)).collect();
        assert_eq!(pairs, vec![(2, 6), (4, 2)]);
    }

    #[test]
    fn precedence_changes_the_front() {
        let free = Instance::builder()
            .chip(Chip::square(1))
            .horizon(1)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .build()
            .expect("valid");
        let chained = Instance::builder()
            .chip(Chip::square(1))
            .horizon(1)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .precedence("a", "b")
            .build()
            .expect("valid");
        let f_free = pareto_front(&free, &SolverConfig::default()).expect("no limits");
        let f_chained = pareto_front(&chained, &SolverConfig::default()).expect("no limits");
        // Chained: serialization is forced, so one point (2, 4).
        assert_eq!(f_chained.len(), 1);
        assert_eq!((f_chained[0].side, f_chained[0].makespan), (2, 4));
        // Free: bigger chips buy time.
        assert_eq!(f_free.len(), 2);
        assert_eq!((f_free[1].side, f_free[1].makespan), (4, 2));
    }

    #[test]
    fn empty_instance_has_empty_front() {
        let i = Instance::builder()
            .chip(Chip::square(1))
            .horizon(1)
            .build()
            .expect("valid");
        assert_eq!(pareto_front(&i, &SolverConfig::default()), Some(Vec::new()));
    }

    #[test]
    fn placements_verify_on_their_points() {
        let i = Instance::builder()
            .chip(Chip::square(1))
            .horizon(1)
            .task(Task::new("a", 1, 2, 3))
            .task(Task::new("b", 2, 1, 1))
            .precedence("a", "b")
            .build()
            .expect("valid");
        let front = pareto_front(&i, &SolverConfig::default()).expect("no limits");
        for p in &front {
            let target = i
                .clone()
                .with_chip(Chip::square(p.side))
                .with_horizon(p.makespan);
            assert_eq!(p.placement.verify(&target), Ok(()));
        }
    }
}
