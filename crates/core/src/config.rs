//! Solver configuration and search statistics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use recopack_bounds::BoundKind;

use crate::telemetry::Telemetry;

/// A cooperative cancellation handle for a running solve.
///
/// Clone the token, hand one copy to [`SolverConfig::cancel`], keep the
/// other, and call [`cancel`](CancelToken::cancel) from any thread: every
/// worker of the search observes the flag at its regular budget checkpoints
/// (node entry and in-cascade polls) and unwinds with
/// [`SolveOutcome::ResourceLimit`](crate::SolveOutcome::ResourceLimit)`(`[`LimitKind::Cancelled`]`)`.
/// Cancellation is level-triggered and sticky: once cancelled, a token stays
/// cancelled, and every solve sharing it stops.
///
/// The default token is never cancelled and costs one relaxed atomic load
/// per budget check. Equality compares token *identity* (same shared flag),
/// which keeps [`SolverConfig`] `Eq` — two independently created tokens are
/// never equal, a token always equals its clones.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation: every search polling this token unwinds at
    /// its next budget checkpoint.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.cancelled, &other.cancelled)
    }
}

impl Eq for CancelToken {}

/// Tunables of the packing-class search.
///
/// The per-rule toggles exist for the ablation experiments (DESIGN.md §4,
/// experiment A1): disabling a propagation rule never changes answers, only
/// the size of the search tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverConfig {
    /// Run the lower-bound battery before searching.
    pub use_bounds: bool,
    /// Run the list-scheduling heuristics before searching.
    pub use_heuristics: bool,
    /// Enable the C2 maximum-weight-clique rule during propagation.
    pub clique_rule: bool,
    /// Enable the induced-C4 rule during propagation.
    pub c4_rule: bool,
    /// Enable the D1/D2 orientation implications during propagation.
    pub orientation_rules: bool,
    /// Force pairs to overlap in dimensions where their sizes cannot be
    /// placed side by side (preprocessing).
    pub must_overlap_rule: bool,
    /// Give up after this many search nodes (`None` = unlimited).
    pub node_limit: Option<u64>,
    /// Give up after this much wall time (`None` = unlimited).
    pub time_limit: Option<Duration>,
    /// Branch on the component ("overlap") choice first. The default tries
    /// comparability (disjointness) first: feasible leaves are reached far
    /// faster, while exhaustive infeasibility proofs are order-insensitive.
    pub component_first: bool,
    /// Symmetry breaking for *twin* tasks (identical shape, identical
    /// precedence relations, no arc between them): when a twin pair is
    /// time-separated, the lower-id task goes first. Sound because swapping
    /// two twins maps feasible packings to feasible packings; automatically
    /// ignored for fixed-schedule problems (where task identities are
    /// pinned by the given start times).
    pub twin_symmetry: bool,
    /// Worker threads for the branch-and-bound. `1` (the default) searches
    /// sequentially; `0` uses the hardware parallelism; `>= 2` runs the
    /// adaptive work-stealing scheduler: every worker searches plain DFS
    /// and *offers* subtrees to idle workers only once its own subtree has
    /// proven deep enough. The verdict and the certificate are identical
    /// for every thread count (see DESIGN.md, "Adaptive work-stealing
    /// parallel search").
    pub threads: usize,
    /// Nodes a worker must expand inside its current work unit before the
    /// unit counts as deep enough to split (parallel mode only). Below the
    /// threshold a subtree is finished by its owner, so small trees never
    /// pay for a state clone — or even a thread spawn, since helpers start
    /// lazily on the first unclaimed offer; above it the worker donates
    /// its highest open branch whenever another worker is starving. The
    /// default (256 nodes, a fraction of a millisecond of search) is the
    /// point below which cloning a state and waking a thread cannot pay
    /// for itself. Must be `>= 1`.
    pub split_after_nodes: u64,
    /// How many queued-but-unclaimed work units the scheduler keeps
    /// *beyond* the number of currently idle workers. `0` (the default)
    /// splits strictly on demand — a worker must actually be waiting — and
    /// keeps speculative clones to a minimum; small values trade a few
    /// extra clones for hiding the donor's inter-node latency.
    pub split_backlog: usize,
    /// Structured telemetry sink for search events (see
    /// [`crate::telemetry`]). Disabled by default; aggregate counters in
    /// [`SolverStats`] are collected either way.
    pub telemetry: Telemetry,
    /// Collect per-phase wall-clock timings (`propagate_ns`, `bounds_ns`,
    /// `realize_ns`, per-rule prune time) into [`SolverStats`]. Off by
    /// default: with profiling off and [`Telemetry::none`] installed the
    /// hot path performs **zero** extra clock reads. Phase timings are
    /// informational — unlike the event *counts*, they are not
    /// thread-count invariant (see DESIGN.md, "Tracing and profiling").
    pub profile: bool,
    /// Cooperative cancellation handle, polled at every budget checkpoint.
    /// The default token is never cancelled; install a clone of a caller-held
    /// [`CancelToken`] to stop a solve from outside (the `recopack serve`
    /// job daemon uses this for `DELETE /jobs/{id}`).
    pub cancel: CancelToken,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            use_bounds: true,
            use_heuristics: true,
            clique_rule: true,
            c4_rule: true,
            orientation_rules: true,
            must_overlap_rule: true,
            node_limit: None,
            time_limit: None,
            component_first: false,
            twin_symmetry: true,
            threads: 1,
            split_after_nodes: 256,
            split_backlog: 0,
            telemetry: Telemetry::none(),
            profile: false,
            cancel: CancelToken::new(),
        }
    }
}

impl SolverConfig {
    /// A configuration with every acceleration disabled — pure DFS with only
    /// the C3 rule and full leaf checks. Used as the ablation baseline.
    pub fn bare() -> Self {
        Self {
            use_bounds: false,
            use_heuristics: false,
            clique_rule: false,
            c4_rule: false,
            orientation_rules: false,
            must_overlap_rule: false,
            node_limit: None,
            time_limit: None,
            component_first: false,
            twin_symmetry: false,
            threads: 1,
            split_after_nodes: 256,
            split_backlog: 0,
            telemetry: Telemetry::none(),
            profile: false,
            cancel: CancelToken::new(),
        }
    }

    /// The number of worker threads this configuration asks for, with `0`
    /// resolved to the hardware parallelism.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Which resource budget ended a search early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitKind {
    /// [`SolverConfig::node_limit`] was exhausted.
    Nodes,
    /// [`SolverConfig::time_limit`] elapsed.
    Time,
    /// [`SolverConfig::cancel`] was cancelled from outside.
    Cancelled,
}

impl std::fmt::Display for LimitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Nodes => write!(f, "node limit"),
            Self::Time => write!(f, "time limit"),
            Self::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Counters describing one solver run.
///
/// Collected per worker thread and merged with [`SolverStats::accumulate`];
/// for a search that runs to exhaustion (no limits, no feasible leaf) the
/// merged totals are identical for every thread count, because the explored
/// tree is. Serialized by
/// [`telemetry::stats_to_json`](crate::telemetry::stats_to_json) under the
/// versioned telemetry schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Search-tree nodes expanded (branching decisions taken).
    pub nodes: u64,
    /// Leaves reaching the full realization check.
    pub leaves: u64,
    /// Conflicts raised by the C2 clique rule.
    pub c2_conflicts: u64,
    /// Conflicts raised by the C3 rule.
    pub c3_conflicts: u64,
    /// Conflicts raised by the induced-C4 rule.
    pub c4_conflicts: u64,
    /// Conflicts raised by orientation (D1/D2) implications.
    pub orientation_conflicts: u64,
    /// Leaves rejected by the realization / verification step.
    pub leaf_rejections: u64,
    /// Edge states fixed in total — by propagation cascades plus the one
    /// branched slot per node (so `propagated_fixes - nodes` is the pure
    /// propagation yield).
    pub propagated_fixes: u64,
    /// Arcs oriented in comparability edges (precedence seeds, branching
    /// consequences, and D1/D2 implications).
    pub arc_fixations: u64,
    /// Propagation events processed (queue pops inside cascades: slot
    /// fixations and arc orientations whose consequences were closed).
    /// Thread-count invariant for exhausted searches, like `nodes`.
    pub propagation_events: u64,
    /// Budget checks charged at node entry (each polls the global node and
    /// time budgets once). In-cascade budget polls are *not* counted here:
    /// their number depends on how cascades split across workers, which
    /// would make the totals thread-count dependent.
    pub budget_checks: u64,
    /// Nodes expanded per branching depth: `depth_histogram[d]` counts the
    /// nodes whose branching decision was the `d`-th on its path. Depths
    /// are global — a stolen work unit resumes at its donor's depth — so
    /// the histogram matches the sequential one for exhausted searches.
    pub depth_histogram: Vec<u64>,
    /// Whether the answer came from bounds (`true`) without any search.
    pub refuted_by_bounds: bool,
    /// Which lower-bound family refuted the instance, when
    /// `refuted_by_bounds` is set.
    pub refuting_bound: Option<BoundKind>,
    /// Whether the answer came from the heuristic without any search.
    pub solved_by_heuristic: bool,
    /// Wall-clock nanoseconds spent in *successful* propagation cascades
    /// (branch consequences and root seeding). Collected only when
    /// [`SolverConfig::profile`] is set; always zero otherwise. Timings
    /// are informational — they sum worker-local clocks, so they are not
    /// thread-count invariant and are excluded from determinism claims.
    pub propagate_ns: u64,
    /// Wall-clock nanoseconds spent in the stage-1 lower-bound battery
    /// (profiling only).
    pub bounds_ns: u64,
    /// Wall-clock nanoseconds spent realizing and verifying leaves
    /// (profiling only).
    pub realize_ns: u64,
    /// Wall-clock nanoseconds of propagation cascades that ended in a
    /// prune, attributed to the rule that fired, indexed by
    /// [`PruneRule::index`](crate::telemetry::PruneRule::index)
    /// (profiling only). Disjoint from `propagate_ns`.
    pub prune_ns: [u64; 4],
}

impl SolverStats {
    /// Total conflicts over all propagation rules.
    pub fn conflicts(&self) -> u64 {
        self.c2_conflicts + self.c3_conflicts + self.c4_conflicts + self.orientation_conflicts
    }

    /// Records one expanded node at branching `depth`.
    pub(crate) fn record_node(&mut self, depth: usize) {
        self.nodes += 1;
        if self.depth_histogram.len() <= depth {
            self.depth_histogram.resize(depth + 1, 0);
        }
        self.depth_histogram[depth] += 1;
    }

    /// Adds the counters of `part` — used to merge per-thread statistics of
    /// a parallel search and per-decision statistics of a binary search.
    pub fn accumulate(&mut self, part: &SolverStats) {
        self.nodes += part.nodes;
        self.leaves += part.leaves;
        self.c2_conflicts += part.c2_conflicts;
        self.c3_conflicts += part.c3_conflicts;
        self.c4_conflicts += part.c4_conflicts;
        self.orientation_conflicts += part.orientation_conflicts;
        self.leaf_rejections += part.leaf_rejections;
        self.propagated_fixes += part.propagated_fixes;
        self.arc_fixations += part.arc_fixations;
        self.propagation_events += part.propagation_events;
        self.budget_checks += part.budget_checks;
        if self.depth_histogram.len() < part.depth_histogram.len() {
            self.depth_histogram.resize(part.depth_histogram.len(), 0);
        }
        for (total, &count) in self.depth_histogram.iter_mut().zip(&part.depth_histogram) {
            *total += count;
        }
        self.refuted_by_bounds |= part.refuted_by_bounds;
        if self.refuting_bound.is_none() {
            self.refuting_bound = part.refuting_bound;
        }
        self.solved_by_heuristic |= part.solved_by_heuristic;
        self.propagate_ns += part.propagate_ns;
        self.bounds_ns += part.bounds_ns;
        self.realize_ns += part.realize_ns;
        for (total, &ns) in self.prune_ns.iter_mut().zip(&part.prune_ns) {
            *total += ns;
        }
    }

    /// Total profiled time over all phases, in nanoseconds (zero unless
    /// [`SolverConfig::profile`] was set).
    pub fn profiled_ns(&self) -> u64 {
        self.propagate_ns + self.bounds_ns + self.realize_ns + self.prune_ns.iter().sum::<u64>()
    }

    /// The deepest branching level reached, if any node was expanded.
    pub fn max_depth(&self) -> Option<usize> {
        self.depth_histogram.iter().rposition(|&count| count > 0)
    }
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} leaves={} conflicts(c2={}, c3={}, c4={}, orient={}) leaf_rejections={} propagated={} arcs={} max_depth={}",
            self.nodes,
            self.leaves,
            self.c2_conflicts,
            self.c3_conflicts,
            self.c4_conflicts,
            self.orientation_conflicts,
            self.leaf_rejections,
            self.propagated_fixes,
            self.arc_fixations,
            self.max_depth().map_or(0, |d| d + 1)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = SolverConfig::default();
        assert!(c.clique_rule && c.c4_rule && c.orientation_rules && c.must_overlap_rule);
        assert!(c.use_bounds && c.use_heuristics);
        assert_eq!(c.node_limit, None);
    }

    #[test]
    fn bare_disables_accelerations() {
        let c = SolverConfig::bare();
        assert!(!c.clique_rule && !c.c4_rule && !c.orientation_rules);
        assert!(!c.use_bounds && !c.use_heuristics);
        assert!(!c.twin_symmetry);
    }

    #[test]
    fn threads_default_to_sequential() {
        assert_eq!(SolverConfig::default().threads, 1);
        assert_eq!(SolverConfig::default().effective_threads(), 1);
        let auto = SolverConfig {
            threads: 0,
            ..SolverConfig::default()
        };
        assert!(auto.effective_threads() >= 1);
        let four = SolverConfig {
            threads: 4,
            ..SolverConfig::default()
        };
        assert_eq!(four.effective_threads(), 4);
    }

    #[test]
    fn stats_accumulate_sums_counters() {
        let mut total = SolverStats {
            nodes: 10,
            c2_conflicts: 1,
            arc_fixations: 3,
            depth_histogram: vec![4, 6],
            ..SolverStats::default()
        };
        let part = SolverStats {
            nodes: 5,
            leaves: 2,
            arc_fixations: 2,
            propagation_events: 7,
            budget_checks: 5,
            depth_histogram: vec![1, 1, 3],
            refuting_bound: Some(recopack_bounds::BoundKind::Volume),
            solved_by_heuristic: true,
            ..SolverStats::default()
        };
        total.accumulate(&part);
        assert_eq!(total.nodes, 15);
        assert_eq!(total.leaves, 2);
        assert_eq!(total.c2_conflicts, 1);
        assert_eq!(total.arc_fixations, 5);
        assert_eq!(total.propagation_events, 7);
        assert_eq!(total.budget_checks, 5);
        assert_eq!(total.depth_histogram, vec![5, 7, 3]);
        assert_eq!(
            total.refuting_bound,
            Some(recopack_bounds::BoundKind::Volume)
        );
        assert!(total.solved_by_heuristic);
    }

    #[test]
    fn accumulate_keeps_the_first_refuting_bound() {
        let mut total = SolverStats {
            refuting_bound: Some(recopack_bounds::BoundKind::Dff),
            ..SolverStats::default()
        };
        total.accumulate(&SolverStats {
            refuting_bound: Some(recopack_bounds::BoundKind::Volume),
            ..SolverStats::default()
        });
        assert_eq!(total.refuting_bound, Some(recopack_bounds::BoundKind::Dff));
    }

    #[test]
    fn max_depth_tracks_the_histogram() {
        assert_eq!(SolverStats::default().max_depth(), None);
        let s = SolverStats {
            depth_histogram: vec![1, 2, 0, 4, 0],
            ..SolverStats::default()
        };
        assert_eq!(s.max_depth(), Some(3));
    }

    #[test]
    fn profiling_is_off_by_default_and_timings_accumulate() {
        assert!(!SolverConfig::default().profile);
        assert!(!SolverConfig::bare().profile);
        let mut total = SolverStats {
            propagate_ns: 5,
            prune_ns: [1, 0, 0, 0],
            ..SolverStats::default()
        };
        total.accumulate(&SolverStats {
            propagate_ns: 7,
            bounds_ns: 2,
            realize_ns: 3,
            prune_ns: [0, 4, 0, 0],
            ..SolverStats::default()
        });
        assert_eq!(total.propagate_ns, 12);
        assert_eq!(total.prune_ns, [1, 4, 0, 0]);
        assert_eq!(total.profiled_ns(), 12 + 2 + 3 + 1 + 4);
    }

    #[test]
    fn limit_kinds_name_their_budget() {
        assert_eq!(LimitKind::Nodes.to_string(), "node limit");
        assert_eq!(LimitKind::Time.to_string(), "time limit");
        assert_eq!(LimitKind::Cancelled.to_string(), "cancelled");
    }

    #[test]
    fn cancel_token_is_sticky_and_shared_between_clones() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let clone = token.clone();
        assert_eq!(token, clone);
        clone.cancel();
        assert!(token.is_cancelled());
        clone.cancel();
        assert!(clone.is_cancelled());
        // A freshly created token is a distinct cancellation domain.
        assert_ne!(token, CancelToken::new());
    }

    #[test]
    fn stats_aggregate_conflicts() {
        let s = SolverStats {
            c2_conflicts: 1,
            c3_conflicts: 2,
            c4_conflicts: 3,
            orientation_conflicts: 4,
            ..SolverStats::default()
        };
        assert_eq!(s.conflicts(), 10);
        assert!(s.to_string().contains("c3=2"));
    }
}
