//! The packing-class branch-and-bound search (paper §3.3 and §4.4).
//!
//! Branching fixes one (pair, dimension) slot to *component* or
//! *comparability*; propagation closes every decision under the C2/C3/C4
//! rules and the D1/D2 orientation implications; leaves are accepted only
//! after a successful coordinate realization and geometric verification.

use std::time::Instant;

use recopack_graph::cliques;
use recopack_model::{Dim, Instance, Placement};
use recopack_order::interval::realize_from_order;
use recopack_order::orientation::transitively_orient_extending;

use crate::config::{SolverConfig, SolverStats};
use crate::state::{EdgeState, Orient, PackingState};

const TIME: usize = Dim::Time.index() as usize;

/// Why a branch was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Conflict {
    C2,
    C3,
    C4,
    Orientation,
}

/// Propagation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A (dim, pair) slot was fixed.
    Fixed(usize, usize),
    /// The arc `u → v` was oriented in dim.
    Arc(usize, usize, usize),
}

/// Marks the unordered pairs of *twins*: tasks with identical shapes whose
/// precedence relations coincide and which are not themselves ordered. Only
/// computed when the rule is enabled and there is no fixed schedule.
fn twin_pair_table(instance: &Instance, config: &SolverConfig, fixed: bool) -> Vec<bool> {
    let n = instance.task_count();
    let idx = recopack_graph::PairIndex::new(n);
    let mut table = vec![false; idx.pair_count()];
    if !config.twin_symmetry || fixed {
        return table;
    }
    let closure = instance
        .precedence()
        .transitive_closure()
        .expect("instances are acyclic");
    for (p, u, v) in idx.iter() {
        if instance.task(u).width() != instance.task(v).width()
            || instance.task(u).height() != instance.task(v).height()
            || instance.task(u).duration() != instance.task(v).duration()
            || closure.has_arc(u, v)
            || closure.has_arc(v, u)
        {
            continue;
        }
        let same_relations = (0..n).all(|w| {
            w == u
                || w == v
                || (closure.has_arc(w, u) == closure.has_arc(w, v)
                    && closure.has_arc(u, w) == closure.has_arc(v, w))
        });
        table[p] = same_relations;
    }
    table
}

/// Result of a completed search.
pub(crate) enum SearchResult {
    Feasible(Placement),
    Infeasible,
    Limit,
}

pub(crate) struct Searcher<'a> {
    instance: &'a Instance,
    config: &'a SolverConfig,
    sizes: [Vec<u64>; 3],
    caps: [u64; 3],
    state: PackingState,
    stats: SolverStats,
    /// Fixed start times (FixedS problems); `None` for free schedules.
    fixed_starts: Option<Vec<u64>>,
    branch_order: Vec<(usize, usize)>,
    /// Pair indices of twin tasks (see `SolverConfig::twin_symmetry`).
    twin_pairs: Vec<bool>,
    started: Instant,
}

impl<'a> Searcher<'a> {
    pub(crate) fn new(instance: &'a Instance, config: &'a SolverConfig) -> Self {
        Self::with_fixed_starts(instance, config, None)
    }

    pub(crate) fn with_fixed_starts(
        instance: &'a Instance,
        config: &'a SolverConfig,
        fixed_starts: Option<Vec<u64>>,
    ) -> Self {
        let n = instance.task_count();
        let sizes = std::array::from_fn(|d| instance.sizes(Dim::from_index(d)));
        let caps = instance.container();
        let state = PackingState::new(n);
        // Branch on the most constrained slots first: largest combined size
        // relative to capacity; ties prefer the time dimension (where the
        // orientation machinery bites), then stable order.
        let idx = state.pair_index();
        let mut branch_order: Vec<(usize, usize)> = Vec::new();
        for d in 0..3 {
            for (p, _, _) in idx.iter() {
                branch_order.push((d, p));
            }
        }
        let score = |&(d, p): &(usize, usize)| {
            let (u, v) = idx.pair(p);
            let sum = sizes[d][u] + sizes[d][v];
            let cap = caps[d].max(1);
            let frac = (sum * 1000) / cap;
            // Time dimension first: precedence orientations and chain bounds
            // propagate hardest there; then most-constrained pairs.
            (if d == TIME { 0 } else { 1 }, std::cmp::Reverse(frac), d, p)
        };
        branch_order.sort_by_key(score);
        let twin_pairs = twin_pair_table(instance, config, fixed_starts.is_some());
        Self {
            instance,
            config,
            sizes,
            caps,
            state,
            stats: SolverStats::default(),
            fixed_starts,
            branch_order,
            twin_pairs,
            started: Instant::now(),
        }
    }

    pub(crate) fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Runs the complete search.
    pub(crate) fn run(&mut self) -> SearchResult {
        // Tasks that cannot fit the container at all.
        for d in 0..3 {
            if self.sizes[d].iter().any(|&s| s > self.caps[d]) {
                return SearchResult::Infeasible;
            }
        }
        let mut queue = Vec::new();
        if self.seed(&mut queue).is_err() || self.propagate(&mut queue).is_err() {
            return SearchResult::Infeasible;
        }
        match self.dfs() {
            Ok(Some(p)) => SearchResult::Feasible(p),
            Ok(None) => SearchResult::Infeasible,
            Err(()) => SearchResult::Limit,
        }
    }

    /// Initial forcings: precedence arcs (time dimension), the must-overlap
    /// rule, and — for FixedS problems — the full time dimension.
    fn seed(&mut self, queue: &mut Vec<Event>) -> Result<(), Conflict> {
        let idx = self.state.pair_index();
        // Fixed schedule: decide every time slot from the given starts.
        if let Some(starts) = self.fixed_starts.clone() {
            for (p, u, v) in idx.iter() {
                let (su, eu) = (starts[u], starts[u] + self.sizes[TIME][u]);
                let (sv, ev) = (starts[v], starts[v] + self.sizes[TIME][v]);
                if su < ev && sv < eu {
                    self.force_state(TIME, p, EdgeState::Component, Conflict::C3, queue)?;
                } else {
                    self.force_state(TIME, p, EdgeState::Comparability, Conflict::C3, queue)?;
                    if eu <= sv {
                        self.force_arc(TIME, u, v, queue)?;
                    } else {
                        self.force_arc(TIME, v, u, queue)?;
                    }
                }
            }
        }
        // Precedence arcs become oriented comparability edges of time.
        for (u, v) in self.instance.precedence().arcs() {
            self.force_state(TIME, idx.index(u, v), EdgeState::Comparability, Conflict::Orientation, queue)?;
            self.force_arc(TIME, u, v, queue)?;
        }
        // Must-overlap: pairs too big to sit side by side in a dimension.
        if self.config.must_overlap_rule {
            for d in 0..3 {
                for (p, u, v) in idx.iter() {
                    if self.sizes[d][u] + self.sizes[d][v] > self.caps[d] {
                        self.force_state(d, p, EdgeState::Component, Conflict::C2, queue)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Sets a slot, enqueueing the event; `on_conflict` is reported when the
    /// slot is already fixed to the opposite value (the rule that forced the
    /// assignment knows why the clash matters).
    fn force_state(
        &mut self,
        dim: usize,
        pair: usize,
        want: EdgeState,
        on_conflict: Conflict,
        queue: &mut Vec<Event>,
    ) -> Result<(), Conflict> {
        match self.state.state(dim, pair) {
            EdgeState::Unassigned => {
                self.state.assign(dim, pair, want);
                self.stats.propagated_fixes += 1;
                queue.push(Event::Fixed(dim, pair));
                Ok(())
            }
            s if s == want => Ok(()),
            _ => Err(on_conflict),
        }
    }

    /// Ensures the arc `u → v` in `dim` (comparability + orientation).
    fn force_arc(
        &mut self,
        dim: usize,
        u: usize,
        v: usize,
        queue: &mut Vec<Event>,
    ) -> Result<(), Conflict> {
        let pair = self.state.pair_index().index(u, v);
        match self.state.state(dim, pair) {
            EdgeState::Component => return Err(Conflict::Orientation),
            EdgeState::Unassigned => {
                self.force_state(dim, pair, EdgeState::Comparability, Conflict::Orientation, queue)?;
            }
            EdgeState::Comparability => {}
        }
        match self.state.orient(dim, pair) {
            Orient::None => {
                self.state.orient_arc(dim, u, v);
                queue.push(Event::Arc(dim, u, v));
                Ok(())
            }
            _ if self.state.has_arc(dim, u, v) => Ok(()),
            _ => Err(Conflict::Orientation),
        }
    }

    fn propagate(&mut self, queue: &mut Vec<Event>) -> Result<(), Conflict> {
        let result = self.propagate_inner(queue);
        if let Err(kind) = result {
            match kind {
                Conflict::C2 => self.stats.c2_conflicts += 1,
                Conflict::C3 => self.stats.c3_conflicts += 1,
                Conflict::C4 => self.stats.c4_conflicts += 1,
                Conflict::Orientation => self.stats.orientation_conflicts += 1,
            }
            queue.clear();
        }
        result
    }

    fn propagate_inner(&mut self, queue: &mut Vec<Event>) -> Result<(), Conflict> {
        while let Some(event) = queue.pop() {
            match event {
                Event::Fixed(d, p) => {
                    let (u, v) = self.state.pair_index().pair(p);
                    match self.state.state(d, p) {
                        EdgeState::Component => self.on_component(d, p, u, v, queue)?,
                        EdgeState::Comparability => self.on_comparability(d, p, u, v, queue)?,
                        EdgeState::Unassigned => unreachable!("events follow assignments"),
                    }
                }
                Event::Arc(d, a, b) => self.on_arc(d, a, b, queue)?,
            }
        }
        Ok(())
    }

    fn on_component(
        &mut self,
        d: usize,
        p: usize,
        u: usize,
        v: usize,
        queue: &mut Vec<Event>,
    ) -> Result<(), Conflict> {
        // C3: a pair must be separated in at least one dimension.
        let others: Vec<usize> = (0..3).filter(|&x| x != d).collect();
        let s0 = self.state.state(others[0], p);
        let s1 = self.state.state(others[1], p);
        match (s0, s1) {
            (EdgeState::Component, EdgeState::Component) => return Err(Conflict::C3),
            (EdgeState::Component, EdgeState::Unassigned) => {
                self.force_state(others[1], p, EdgeState::Comparability, Conflict::C3, queue)?;
            }
            (EdgeState::Unassigned, EdgeState::Component) => {
                self.force_state(others[0], p, EdgeState::Comparability, Conflict::C3, queue)?;
            }
            _ => {}
        }
        if self.config.c4_rule {
            self.c4_scan(d, u, v, true, queue)?;
        }
        if self.config.orientation_rules {
            // A new component edge (u, v) links comparability edges at any
            // common comparability-neighbor w: w→u ⇔ w→v.
            let n = self.state.task_count();
            for w in 0..n {
                if w == u || w == v {
                    continue;
                }
                let cg = self.state.comparability_graph(d);
                if !(cg.has_edge(u, w) && cg.has_edge(v, w)) {
                    continue;
                }
                if self.state.has_arc(d, w, u) {
                    self.force_arc(d, w, v, queue)?;
                }
                if self.state.has_arc(d, u, w) {
                    self.force_arc(d, v, w, queue)?;
                }
                if self.state.has_arc(d, w, v) {
                    self.force_arc(d, w, u, queue)?;
                }
                if self.state.has_arc(d, v, w) {
                    self.force_arc(d, u, w, queue)?;
                }
            }
        }
        Ok(())
    }

    fn on_comparability(
        &mut self,
        d: usize,
        p: usize,
        u: usize,
        v: usize,
        queue: &mut Vec<Event>,
    ) -> Result<(), Conflict> {
        // C2, cheapest form: the pair itself is a chain.
        if self.sizes[d][u] + self.sizes[d][v] > self.caps[d] {
            return Err(Conflict::C2);
        }
        // C2, clique form: only cliques through the new edge can newly
        // violate the bound.
        if self.config.clique_rule {
            let mut seed = recopack_graph::BitSet::new(self.state.task_count());
            seed.insert(u);
            seed.insert(v);
            let best = cliques::max_weight_clique_containing(
                self.state.comparability_graph(d),
                &self.sizes[d],
                &seed,
            )
            .expect("a fixed comparability edge is a clique");
            if best.weight > self.caps[d] {
                return Err(Conflict::C2);
            }
        }
        if self.config.c4_rule {
            self.c4_scan(d, u, v, false, queue)?;
        }
        // Twin symmetry: interchangeable tasks separated in time go in id
        // order. Swapping two twins is an automorphism of the instance, so
        // restricting to the sorted representative loses no packings.
        if d == TIME && self.twin_pairs[p] {
            self.force_arc(d, u.min(v), u.max(v), queue)?;
        }
        if self.config.orientation_rules {
            // D1 with the new comparability edge as one of the pair-sharing
            // edges: (u,v) & (u,w) comparability with (v,w) component means
            // u→v ⇔ u→w (and symmetrically at v).
            let n = self.state.task_count();
            for w in 0..n {
                if w == u || w == v {
                    continue;
                }
                let vw_component = self.state.component_graph(d).has_edge(v, w);
                let uw_component = self.state.component_graph(d).has_edge(u, w);
                let uw_comparability = self.state.comparability_graph(d).has_edge(u, w);
                let vw_comparability = self.state.comparability_graph(d).has_edge(v, w);
                if vw_component && uw_comparability {
                    if self.state.has_arc(d, u, w) {
                        self.force_arc(d, u, v, queue)?;
                    }
                    if self.state.has_arc(d, w, u) {
                        self.force_arc(d, v, u, queue)?;
                    }
                }
                if uw_component && vw_comparability {
                    if self.state.has_arc(d, v, w) {
                        self.force_arc(d, v, u, queue)?;
                    }
                    if self.state.has_arc(d, w, v) {
                        self.force_arc(d, u, v, queue)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// D1/D2 consequences of a newly oriented arc `a → b` in `dim`.
    fn on_arc(
        &mut self,
        d: usize,
        a: usize,
        b: usize,
        queue: &mut Vec<Event>,
    ) -> Result<(), Conflict> {
        let n = self.state.task_count();
        let idx = self.state.pair_index();
        for w in 0..n {
            if w == a || w == b {
                continue;
            }
            let aw = self.state.state(d, idx.index(a, w));
            let bw = self.state.state(d, idx.index(b, w));
            // D1: {a,b},{a,w} comparability + {b,w} component: a→b ⇒ a→w.
            if aw == EdgeState::Comparability && bw == EdgeState::Component {
                self.force_arc(d, a, w, queue)?;
            }
            // D1 at b: {b,a},{b,w} comparability + {a,w} component:
            // a→b (= not b→a) ⇒ not b→w ⇒ w→b.
            if bw == EdgeState::Comparability && aw == EdgeState::Component {
                self.force_arc(d, w, b, queue)?;
            }
            // D2: a→b, b→w ⇒ a→w (forcing {a,w} comparability if open).
            if bw == EdgeState::Comparability && self.state.has_arc(d, b, w) {
                self.force_arc(d, a, w, queue)?;
            }
            // D2: w→a, a→b ⇒ w→b.
            if aw == EdgeState::Comparability && self.state.has_arc(d, w, a) {
                self.force_arc(d, w, b, queue)?;
            }
        }
        // Oriented-chain bound: every fixed arc survives to the leaf
        // realization, so a weighted chain over fixed arcs longer than the
        // container refutes the whole subtree. This is where a tight C2
        // clique plus precedence structure (e.g. "the last multiplier always
        // has an ALU successor") becomes visible mid-search.
        if self.oriented_chain_exceeds(d) {
            return Err(Conflict::C2);
        }
        Ok(())
    }

    /// Longest vertex-weighted path over the fixed arcs of `dim` exceeds
    /// the container (cycles count as exceeded; D2 closure normally rules
    /// them out earlier).
    fn oriented_chain_exceeds(&self, d: usize) -> bool {
        let n = self.state.task_count();
        let arcs = self.state.arcs(d);
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for &(u, v) in &arcs {
            succ[u].push(v);
            indeg[v] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut dist: Vec<u64> = (0..n).map(|v| self.sizes[d][v]).collect();
        let mut seen = 0usize;
        let mut best = 0u64;
        while let Some(u) = queue.pop() {
            seen += 1;
            best = best.max(dist[u]);
            for &v in &succ[u] {
                dist[v] = dist[v].max(dist[u] + self.sizes[d][v]);
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        seen < n || best > self.caps[d]
    }

    /// Induced-C4 avoidance around a newly fixed slot (paper §3.3, forbidden
    /// configuration 1). `as_cycle_edge` selects the role of `(u, v)`.
    ///
    /// The forbidden pattern on an ordered 4-cycle `a-b-c-d` is: all four
    /// cycle edges component, both chords `{a,c}`, `{b,d}` comparability.
    /// Complete pattern = conflict; pattern missing exactly one open slot =
    /// force that slot to the opposite value.
    fn c4_scan(
        &mut self,
        d: usize,
        u: usize,
        v: usize,
        as_cycle_edge: bool,
        queue: &mut Vec<Event>,
    ) -> Result<(), Conflict> {
        let n = self.state.task_count();
        let idx = self.state.pair_index();
        for w in 0..n {
            if w == u || w == v {
                continue;
            }
            for x in 0..n {
                if x == u || x == v || x == w {
                    continue;
                }
                // Role 1: (u,v) is the cycle edge a-b; cycle u-v-w-x.
                // Role 2: (u,v) is the chord a-c; cycle u-w-v-x.
                let (cyc, chords) = if as_cycle_edge {
                    (
                        [idx.index(u, v), idx.index(v, w), idx.index(w, x), idx.index(x, u)],
                        [idx.index(u, w), idx.index(v, x)],
                    )
                } else {
                    (
                        [idx.index(u, w), idx.index(w, v), idx.index(v, x), idx.index(x, u)],
                        [idx.index(u, v), idx.index(w, x)],
                    )
                };
                let mut open: Option<(usize, EdgeState)> = None;
                let mut dead = false;
                for &p in &cyc {
                    match self.state.state(d, p) {
                        EdgeState::Component => {}
                        EdgeState::Unassigned => {
                            if open.replace((p, EdgeState::Comparability)).is_some() {
                                dead = true;
                                break;
                            }
                        }
                        EdgeState::Comparability => {
                            dead = true;
                            break;
                        }
                    }
                }
                if !dead {
                    for &p in &chords {
                        match self.state.state(d, p) {
                            EdgeState::Comparability => {}
                            EdgeState::Unassigned => {
                                if open.replace((p, EdgeState::Component)).is_some() {
                                    dead = true;
                                    break;
                                }
                            }
                            EdgeState::Component => {
                                dead = true;
                                break;
                            }
                        }
                    }
                }
                if dead {
                    continue;
                }
                match open {
                    None => return Err(Conflict::C4),
                    Some((p, forced)) => self.force_state(d, p, forced, Conflict::C4, queue)?,
                }
            }
        }
        Ok(())
    }

    fn next_unassigned(&self) -> Option<(usize, usize)> {
        self.branch_order
            .iter()
            .copied()
            .find(|&(d, p)| self.state.state(d, p) == EdgeState::Unassigned)
    }

    fn out_of_budget(&self) -> bool {
        if let Some(limit) = self.config.node_limit {
            if self.stats.nodes >= limit {
                return true;
            }
        }
        if let Some(limit) = self.config.time_limit {
            if self.stats.nodes % 256 == 0 && self.started.elapsed() >= limit {
                return true;
            }
        }
        false
    }

    /// DFS over the remaining slots. `Ok(Some)` = feasible with certificate;
    /// `Ok(None)` = subtree exhausted; `Err(())` = resource limit.
    fn dfs(&mut self) -> Result<Option<Placement>, ()> {
        let Some((d, p)) = self.next_unassigned() else {
            return Ok(self.check_leaf());
        };
        self.stats.nodes += 1;
        if self.out_of_budget() {
            return Err(());
        }
        let choices = if self.config.component_first {
            [EdgeState::Component, EdgeState::Comparability]
        } else {
            [EdgeState::Comparability, EdgeState::Component]
        };
        for choice in choices {
            let mark = self.state.mark();
            let mut queue = Vec::new();
            let ok = self
                .force_state(d, p, choice, Conflict::C3, &mut queue)
                .and_then(|()| self.propagate_inner(&mut queue));
            match ok {
                Ok(()) => {
                    if let Some(placement) = self.dfs()? {
                        return Ok(Some(placement));
                    }
                }
                Err(kind) => match kind {
                    Conflict::C2 => self.stats.c2_conflicts += 1,
                    Conflict::C3 => self.stats.c3_conflicts += 1,
                    Conflict::C4 => self.stats.c4_conflicts += 1,
                    Conflict::Orientation => self.stats.orientation_conflicts += 1,
                },
            }
            self.state.rollback(mark);
        }
        Ok(None)
    }

    /// Full leaf acceptance: realize every dimension, verify geometrically.
    fn check_leaf(&mut self) -> Option<Placement> {
        debug_assert_eq!(self.state.unassigned_count(), 0, "leaves are fully assigned");
        self.stats.leaves += 1;
        let n = self.state.task_count();
        let mut origins = vec![[0u64; 3]; n];
        for d in 0..3 {
            if d == TIME {
                if let Some(starts) = &self.fixed_starts {
                    for (i, &s) in starts.iter().enumerate() {
                        origins[i][d] = s;
                    }
                    continue;
                }
            }
            let comp = self.state.comparability_graph(d);
            let seeds = self.state.arcs(d);
            let Ok(order) = transitively_orient_extending(comp, seeds) else {
                self.stats.leaf_rejections += 1;
                return None;
            };
            let realization = realize_from_order(&order, &self.sizes[d]);
            if realization.extent > self.caps[d] {
                self.stats.leaf_rejections += 1;
                return None;
            }
            for i in 0..n {
                origins[i][d] = realization.starts[i];
            }
        }
        let placement = Placement::new(origins, self.instance);
        if placement.verify(self.instance).is_ok() {
            Some(placement)
        } else {
            self.stats.leaf_rejections += 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{Chip, Task};

    fn solve(instance: &Instance, config: &SolverConfig) -> SearchResult {
        Searcher::new(instance, config).run()
    }

    fn tiny(horizon: u64, with_arc: bool) -> Instance {
        let mut b = Instance::builder()
            .chip(Chip::square(2))
            .horizon(horizon)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2));
        if with_arc {
            b = b.precedence("a", "b");
        }
        b.build().expect("valid")
    }

    #[test]
    fn serial_pair_found() {
        let i = tiny(4, true);
        match solve(&i, &SolverConfig::default()) {
            SearchResult::Feasible(p) => {
                assert_eq!(p.verify(&i), Ok(()));
                // precedence forces a before b
                assert!(p.task_box(0).end(Dim::Time) <= p.task_box(1).start(Dim::Time));
            }
            _ => panic!("expected feasible"),
        }
    }

    #[test]
    fn too_tight_horizon_is_infeasible() {
        let i = tiny(3, true);
        assert!(matches!(
            solve(&i, &SolverConfig::default()),
            SearchResult::Infeasible
        ));
        // Also with every acceleration off — pure search must agree.
        assert!(matches!(
            solve(&i, &SolverConfig::bare()),
            SearchResult::Infeasible
        ));
    }

    #[test]
    fn no_precedence_still_packs() {
        let i = tiny(4, false);
        assert!(matches!(
            solve(&i, &SolverConfig::default()),
            SearchResult::Feasible(_)
        ));
    }

    #[test]
    fn oversized_task_infeasible_immediately() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(2)
            .task(Task::new("big", 3, 1, 1))
            .build()
            .expect("valid");
        assert!(matches!(
            solve(&i, &SolverConfig::default()),
            SearchResult::Infeasible
        ));
    }

    #[test]
    fn empty_instance_is_feasible() {
        let i = Instance::builder()
            .chip(Chip::square(1))
            .horizon(1)
            .build()
            .expect("valid");
        assert!(matches!(
            solve(&i, &SolverConfig::default()),
            SearchResult::Feasible(_)
        ));
    }

    #[test]
    fn node_limit_reports_limit() {
        // A nontrivial instance with node_limit 0 must stop, not answer.
        let i = Instance::builder()
            .chip(Chip::square(4))
            .horizon(8)
            .tasks((0..5).map(|k| Task::new(format!("t{k}"), 2, 2, 2)))
            .build()
            .expect("valid");
        let config = SolverConfig {
            node_limit: Some(0),
            ..SolverConfig::default()
        };
        assert!(matches!(solve(&i, &config), SearchResult::Limit));
    }

    #[test]
    fn fixed_starts_solves_spatial_subproblem() {
        // Two 2x2 tasks overlapping in time on a 4x2 chip: must separate in x.
        let i = Instance::builder()
            .chip(Chip::new(4, 2))
            .horizon(2)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .build()
            .expect("valid");
        let config = SolverConfig::default();
        let mut s = Searcher::with_fixed_starts(&i, &config, Some(vec![0, 0]));
        match s.run() {
            SearchResult::Feasible(p) => {
                assert_eq!(p.verify(&i), Ok(()));
                assert_eq!(p.task_box(0).start(Dim::Time), 0);
                assert_eq!(p.task_box(1).start(Dim::Time), 0);
            }
            _ => panic!("expected feasible"),
        }
        // Same but on a 2x2 chip: spatially impossible.
        let cramped = i.with_chip(Chip::square(2));
        let mut s = Searcher::with_fixed_starts(&cramped, &config, Some(vec![0, 0]));
        assert!(matches!(s.run(), SearchResult::Infeasible));
    }
}

#[cfg(test)]
mod propagation_tests {
    use super::*;
    use recopack_model::{Chip, Task};

    /// Precedence through a shared time window: D1/D2 must orient the third
    /// task relative to the chain even though no arc names it.
    ///
    /// Setup: full-chip tasks a -> c (arcs), plus b forced to overlap
    /// neither (full chip, horizon exactly fits all three). The chain bound
    /// and orientation rules must still find the serialization.
    #[test]
    fn three_full_chip_tasks_serialize() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(6)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .task(Task::new("c", 2, 2, 2))
            .precedence("a", "c")
            .build()
            .expect("valid");
        let config = SolverConfig::default();
        let mut s = Searcher::new(&i, &config);
        match s.run() {
            SearchResult::Feasible(p) => {
                assert_eq!(p.verify(&i), Ok(()));
                assert_eq!(p.makespan(), 6);
            }
            _ => panic!("exact fit must be found"),
        }
        // One cycle less is impossible; the oriented chain bound must see it
        // without a large tree.
        let tight = i.with_horizon(5);
        let mut s = Searcher::new(&tight, &config);
        assert!(matches!(s.run(), SearchResult::Infeasible));
        assert!(s.stats().nodes <= 8, "expected tiny tree, got {}", s.stats().nodes);
    }

    /// The must-overlap rule plus C3: two tasks too wide and too tall to
    /// separate spatially are forced apart in time at the root.
    #[test]
    fn must_overlap_forces_time_separation_at_root() {
        let i = Instance::builder()
            .chip(Chip::square(3))
            .horizon(4)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .build()
            .expect("valid");
        let config = SolverConfig::default();
        let mut s = Searcher::new(&i, &config);
        match s.run() {
            SearchResult::Feasible(p) => {
                let (a, b) = (p.task_box(0), p.task_box(1));
                assert!(
                    a.end(Dim::Time) <= b.start(Dim::Time)
                        || b.end(Dim::Time) <= a.start(Dim::Time),
                    "2+2 > 3 in both spatial dimensions forces time separation"
                );
                // Nothing was left to branch on.
                assert_eq!(s.stats().nodes, 0);
            }
            _ => panic!("serialization fits the horizon"),
        }
    }

    /// The C2 clique rule: three tasks pairwise disjoint in time must chain,
    /// and the chain exceeds the horizon -> refuted without leaves.
    #[test]
    fn clique_rule_refutes_over_long_chains() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(5)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .task(Task::new("c", 2, 2, 2))
            .build()
            .expect("valid");
        let config = SolverConfig {
            use_bounds: false,
            use_heuristics: false,
            ..SolverConfig::default()
        };
        let mut s = Searcher::new(&i, &config);
        assert!(matches!(s.run(), SearchResult::Infeasible));
        assert!(s.stats().c2_conflicts > 0, "C2 must fire: {}", s.stats());
        assert_eq!(s.stats().leaves, 0, "no leaf should be reached: {}", s.stats());
    }

    /// Orientation conflict: a precedence arc against a forced time order.
    /// a -> b by arc, but b must finish before a can even start because a
    /// depends on c and c depends on b... i.e. a cycle through closure would
    /// be caught at build; instead force the conflict geometrically: a -> b
    /// with horizon = both durations, and b also -> a via a middle task is
    /// impossible to build. Use instead: a -> b, horizon exactly a+b, chip
    /// fits one at a time; check the *feasible* order honors the arc.
    #[test]
    fn precedence_orientation_survives_to_the_leaf() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(4)
            .task(Task::new("late", 2, 2, 2))
            .task(Task::new("early", 2, 2, 2))
            .precedence("early", "late")
            .build()
            .expect("valid");
        let config = SolverConfig {
            use_heuristics: false,
            ..SolverConfig::default()
        };
        let mut s = Searcher::new(&i, &config);
        match s.run() {
            SearchResult::Feasible(p) => {
                // "early" (id 1) strictly precedes "late" (id 0).
                assert!(p.task_box(1).end(Dim::Time) <= p.task_box(0).start(Dim::Time));
            }
            _ => panic!("chain fits exactly"),
        }
    }

    /// The C4 rule must not change answers (spot check mirroring the
    /// proptest in tests/pipeline_invariants.rs with a crafted shape that
    /// actually contains potential induced 4-cycles).
    #[test]
    fn c4_rule_preserves_answers_on_a_grid_of_dominoes() {
        // Four 1x2 dominoes on a 2x2 chip, horizon 2: exactly two fit at a
        // time lying flat; answer must be identical with the rule on or off.
        let build = |horizon| {
            Instance::builder()
                .chip(Chip::square(2))
                .horizon(horizon)
                .tasks((0..4).map(|k| Task::new(format!("d{k}"), 2, 1, 1)))
                .build()
                .expect("valid")
        };
        for horizon in [1u64, 2, 3] {
            let i = build(horizon);
            let on = SolverConfig {
                use_bounds: false,
                use_heuristics: false,
                ..SolverConfig::default()
            };
            let off = SolverConfig { c4_rule: false, ..on.clone() };
            let mut s_on = Searcher::new(&i, &on);
            let mut s_off = Searcher::new(&i, &off);
            let a = matches!(s_on.run(), SearchResult::Feasible(_));
            let b = matches!(s_off.run(), SearchResult::Feasible(_));
            assert_eq!(a, b, "horizon {horizon}");
            assert_eq!(a, horizon >= 2, "two dominoes per cycle");
        }
    }
}
