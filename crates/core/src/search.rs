//! The packing-class branch-and-bound search (paper §3.3 and §4.4).
//!
//! Branching fixes one (pair, dimension) slot to *component* or
//! *comparability*; propagation closes every decision under the C2/C3/C4
//! rules and the D1/D2 orientation implications; leaves are accepted only
//! after a successful coordinate realization and geometric verification.
//!
//! The search runs sequentially or in parallel ([`SolverConfig::threads`]).
//! Parallel mode is *adaptive work-stealing*: every worker runs plain DFS
//! on its current subtree (a *work unit*) and, once the unit has survived
//! [`SolverConfig::split_after_nodes`] nodes, *offers* its highest open
//! branch — as a cloned [`PackingState`] rolled back to that branch point —
//! to idle workers through a shared priority queue. Units are identified by
//! their branch-choice path from the root, whose lexicographic order **is**
//! sequential depth-first order; the verdict combines the lexicographically
//! least feasible leaf with the least abandoned subtree (see
//! [`Search::finalize`]), so verdict and certificate are identical for
//! every thread count and small trees never pay a parallel tax (DESIGN.md,
//! "Adaptive work-stealing parallel search").

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use recopack_graph::{cliques, BitSet};
use recopack_model::{Dim, Instance, Placement};
use recopack_order::interval::realize_from_order;
use recopack_order::orientation::transitively_orient_extending;

use crate::beacon::{self, ActivityBeacon, Phase as BeaconPhase};
use crate::config::{LimitKind, SolverConfig, SolverStats};
use crate::state::{EdgeState, Orient, PackingState};
use crate::telemetry::{EventKind, PruneRule, SearchEvent};

const TIME: usize = Dim::Time.index();

/// How many propagation events pass between budget checks inside
/// [`Worker::propagate_inner`] — a single search node can cascade through
/// thousands of events (clique searches, C4 scans), so the time limit and
/// the cancellation flag must be polled *inside* the loop, not only at node
/// entry.
const PROPAGATION_CHECK_INTERVAL: u32 = 128;

/// Why a branch was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Conflict {
    C2,
    C3,
    C4,
    Orientation,
    /// Not a real conflict: the shared budget ran out or the subtree was
    /// cancelled mid-propagation. Unwinds the search instead of pruning.
    Stopped,
}

impl Conflict {
    /// The telemetry rule tag for a real pruning conflict (`None` for
    /// budget/cancellation unwinds, which prune nothing).
    fn prune_rule(self) -> Option<PruneRule> {
        match self {
            Conflict::C2 => Some(PruneRule::C2),
            Conflict::C3 => Some(PruneRule::C3),
            Conflict::C4 => Some(PruneRule::C4),
            Conflict::Orientation => Some(PruneRule::Orientation),
            Conflict::Stopped => None,
        }
    }

    /// Beacon rule code: the index into [`beacon::RULE_NAMES`].
    fn beacon_rule(self) -> u8 {
        match self {
            Conflict::C2 => 1,
            Conflict::C3 => 2,
            Conflict::C4 => 3,
            Conflict::Orientation => 4,
            Conflict::Stopped => 5,
        }
    }
}

/// Propagation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A (dim, pair) slot was fixed.
    Fixed(usize, usize),
    /// The arc `u → v` was oriented in dim.
    Arc(usize, usize, usize),
}

/// Marks the unordered pairs of *twins*: tasks with identical shapes whose
/// precedence relations coincide and which are not themselves ordered. Only
/// computed when the rule is enabled and there is no fixed schedule.
fn twin_pair_table(instance: &Instance, config: &SolverConfig, fixed: bool) -> Vec<bool> {
    let n = instance.task_count();
    let idx = recopack_graph::PairIndex::new(n);
    let mut table = vec![false; idx.pair_count()];
    if !config.twin_symmetry || fixed {
        return table;
    }
    let closure = instance
        .precedence()
        .transitive_closure()
        .expect("instances are acyclic");
    for (p, u, v) in idx.iter() {
        if instance.task(u).width() != instance.task(v).width()
            || instance.task(u).height() != instance.task(v).height()
            || instance.task(u).duration() != instance.task(v).duration()
            || closure.has_arc(u, v)
            || closure.has_arc(v, u)
        {
            continue;
        }
        let same_relations = (0..n).all(|w| {
            w == u
                || w == v
                || (closure.has_arc(w, u) == closure.has_arc(w, v)
                    && closure.has_arc(u, w) == closure.has_arc(v, w))
        });
        table[p] = same_relations;
    }
    table
}

/// Result of a completed search.
pub(crate) enum SearchResult {
    Feasible(Placement),
    Infeasible,
    Limit(LimitKind),
}

/// Everything a worker thread reads but never writes: the instance, the
/// configuration, precomputed sizes, the branching order, and the twin
/// table. Shared by reference across all threads of one search.
struct SearchContext<'a> {
    instance: &'a Instance,
    config: &'a SolverConfig,
    sizes: [Vec<u64>; 3],
    caps: [u64; 3],
    /// Fixed start times (FixedS problems); `None` for free schedules.
    fixed_starts: Option<Vec<u64>>,
    branch_order: Vec<(usize, usize)>,
    /// Pair indices of twin tasks (see `SolverConfig::twin_symmetry`).
    twin_pairs: Vec<bool>,
}

/// Counters and flags shared by every thread of one search, so that
/// `node_limit` and `time_limit` stay *global* budgets.
struct SharedBudget {
    /// Search nodes expanded across all threads.
    nodes: AtomicU64,
    /// `0` = running, otherwise a `LimitKind` discriminant + 1; written
    /// once by the first thread that exhausts a budget.
    stop: AtomicU8,
    started: Instant,
}

const STOP_NODES: u8 = 1;
const STOP_TIME: u8 = 2;
const STOP_CANCELLED: u8 = 3;

impl SharedBudget {
    fn new() -> Self {
        Self {
            nodes: AtomicU64::new(0),
            stop: AtomicU8::new(0),
            started: Instant::now(),
        }
    }

    /// Records the first budget violation; later calls keep the original
    /// cause.
    fn request_stop(&self, kind: LimitKind) {
        let code = match kind {
            LimitKind::Nodes => STOP_NODES,
            LimitKind::Time => STOP_TIME,
            LimitKind::Cancelled => STOP_CANCELLED,
        };
        let _ = self
            .stop
            .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed) != 0
    }

    fn stop_kind(&self) -> Option<LimitKind> {
        match self.stop.load(Ordering::Relaxed) {
            STOP_NODES => Some(LimitKind::Nodes),
            STOP_TIME => Some(LimitKind::Time),
            STOP_CANCELLED => Some(LimitKind::Cancelled),
            _ => None,
        }
    }
}

/// One subtree handed between workers of the parallel search.
///
/// A unit is *disjoint* from every other unit: the donor removes the
/// donated branch from its own backtracking before publishing, so no node
/// is ever expanded twice and the merged statistics of an exhausted search
/// are thread-count invariant.
struct WorkUnit {
    /// Telemetry id ([`SearchEvent::subtree`]): `0` for the root unit, then
    /// one fresh id per offered split, in offer order.
    id: usize,
    /// Branch-choice indices (0 = first choice, 1 = second) from the global
    /// root to this unit's root. Lexicographic order on these paths **is**
    /// the sequential depth-first visit order, which makes "would the
    /// sequential search have reached this before the incumbent?" a plain
    /// `<` on byte vectors.
    priority: Vec<u8>,
    /// The packing state at the donated node — rolled back to the moment
    /// *before* the donor decided the node, so the pending sibling choice
    /// applies cleanly. The root unit carries the propagated root state.
    state: PackingState,
    /// The donor's [`Worker::cursor`] at that node.
    cursor: usize,
    /// The untried sibling choice donated with the unit: fix slot
    /// `(dim, pair)` to the given state, then search below it. The donor
    /// already recorded the parent node and charged its budget check (one
    /// per node, covering both children, exactly like the sequential
    /// search), so the thief applies the decision *without* recording a
    /// node — keeping every merged counter thread-count invariant. `None`
    /// for the root unit, which starts at a fresh node.
    pending: Option<(usize, usize, EdgeState)>,
}

/// The shared state of the work-stealing scheduler. Lock order: `queue`
/// before `incumbent` before `min_abandoned`; no path acquires them in
/// reverse.
struct Scheduler {
    queue: Mutex<UnitQueue>,
    /// Signalled when a unit is pushed and when the queue shuts down.
    work: Condvar,
    /// Workers currently blocked waiting for a unit — the *demand* signal
    /// read (relaxed) by busy workers deciding whether to offer a split.
    idle: AtomicUsize,
    /// Helper threads the configuration allows (`threads - 1`; the calling
    /// thread is worker 0).
    helpers: usize,
    /// Helper threads actually started. Helpers are spawned *lazily*, by
    /// the root worker, the first time a queued unit finds no idle worker
    /// — a search whose tree never grows deep enough to split never pays
    /// thread spawn/join latency at all.
    spawned: AtomicUsize,
    /// Mirror of `queue.units.len()`, readable without the lock — the
    /// *supply* signal of the same decision.
    pending: AtomicUsize,
    /// Telemetry ids for offered units (`0` is the root unit).
    next_unit: AtomicUsize,
    /// Bumped on every incumbent improvement. Workers cache the last value
    /// they saw and re-read `incumbent` only when it moves, so the
    /// steady-state supersession check is one relaxed load per node.
    incumbent_epoch: AtomicU64,
    /// The lexicographically least feasible leaf found so far: its full
    /// branch-choice path and its verified placement.
    incumbent: Mutex<Option<(Vec<u8>, Placement)>>,
    /// The least priority path whose subtree was abandoned unexplored
    /// (budget stop, cancellation, or superseded by the incumbent).
    /// Consulted once, in [`Search::finalize`].
    min_abandoned: Mutex<Option<Vec<u8>>>,
}

struct UnitQueue {
    units: Vec<WorkUnit>,
    /// Workers currently searching a unit.
    active: usize,
    /// Set once — by exhaustion (no units, no active workers) or by a
    /// budget stop — after which every worker drains and exits.
    done: bool,
}

impl UnitQueue {
    /// Removes and returns the least-priority unit (the one the sequential
    /// search would enter first). The queue stays small — offers are demand
    /// driven — so a linear scan beats maintaining a heap.
    fn take_least(&mut self) -> Option<WorkUnit> {
        let least = self
            .units
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.priority.cmp(&b.priority))
            .map(|(i, _)| i)?;
        Some(self.units.swap_remove(least))
    }
}

impl Scheduler {
    fn new(helpers: usize) -> Self {
        Self {
            queue: Mutex::new(UnitQueue {
                units: Vec::new(),
                active: 0,
                done: false,
            }),
            work: Condvar::new(),
            idle: AtomicUsize::new(0),
            helpers,
            spawned: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            next_unit: AtomicUsize::new(1),
            incumbent_epoch: AtomicU64::new(0),
            incumbent: Mutex::new(None),
            min_abandoned: Mutex::new(None),
        }
    }

    /// Helper threads that could still be started — latent demand the
    /// split gate counts alongside currently-idle workers.
    fn unspawned(&self) -> usize {
        self.helpers
            .saturating_sub(self.spawned.load(Ordering::Relaxed))
    }

    /// Whether the incumbent precedes `path` in depth-first order — i.e.
    /// the sequential search would have stopped before ever reaching
    /// `path`. The incumbent only ever moves towards lower paths, so a
    /// `true` answer is stable.
    fn behind_incumbent(&self, path: &[u8]) -> bool {
        self.incumbent
            .lock()
            .expect("no poisoned locks")
            .as_ref()
            .is_some_and(|(leaf, _)| leaf.as_slice() < path)
    }

    /// Publishes an offered unit and wakes one idle worker. Offers racing
    /// a fresh incumbent are dropped here instead of queued (their whole
    /// subtree is behind the incumbent).
    fn push(&self, unit: WorkUnit, stopped: bool) {
        if self.behind_incumbent(&unit.priority) {
            self.record_abandoned(unit.priority, stopped);
            return;
        }
        let mut queue = self.queue.lock().expect("no poisoned locks");
        queue.units.push(unit);
        self.pending.store(queue.units.len(), Ordering::Relaxed);
        drop(queue);
        self.work.notify_one();
    }

    /// Records a feasible leaf; keeps the lexicographically least one.
    fn record_feasible(&self, path: Vec<u8>, placement: Placement) {
        let mut best = self.incumbent.lock().expect("no poisoned locks");
        if best.as_ref().is_none_or(|(leaf, _)| path < *leaf) {
            *best = Some((path, placement));
            self.incumbent_epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a subtree abandoned unexplored. The invariant checked here
    /// is what makes [`Search::finalize`] sound: abandonment happens only
    /// under a budget stop or strictly behind the incumbent — never silently
    /// in front of a feasible leaf.
    fn record_abandoned(&self, path: Vec<u8>, stopped: bool) {
        debug_assert!(
            stopped || self.behind_incumbent(&path),
            "subtrees are abandoned only on a stop or behind the incumbent"
        );
        let mut min = self.min_abandoned.lock().expect("no poisoned locks");
        if min.as_ref().is_none_or(|m| path < *m) {
            *min = Some(path);
        }
    }
}

/// One complete search over an instance: builds the shared context and
/// budget, then runs sequentially or fans out to worker threads.
pub(crate) struct Search<'a> {
    ctx: SearchContext<'a>,
    budget: SharedBudget,
}

impl<'a> Search<'a> {
    pub(crate) fn new(instance: &'a Instance, config: &'a SolverConfig) -> Self {
        Self::with_fixed_starts(instance, config, None)
    }

    pub(crate) fn with_fixed_starts(
        instance: &'a Instance,
        config: &'a SolverConfig,
        fixed_starts: Option<Vec<u64>>,
    ) -> Self {
        let sizes = Dim::ALL.map(|d| instance.sizes(d));
        let caps = instance.container();
        // Branch on the most constrained slots first: largest combined size
        // relative to capacity; ties prefer the time dimension (where the
        // orientation machinery bites), then stable order.
        let idx = recopack_graph::PairIndex::new(instance.task_count());
        let mut branch_order: Vec<(usize, usize)> = Vec::new();
        for d in 0..3 {
            for (p, _, _) in idx.iter() {
                branch_order.push((d, p));
            }
        }
        let score = |&(d, p): &(usize, usize)| {
            let (u, v) = idx.pair(p);
            let sum = sizes[d][u] + sizes[d][v];
            let cap = caps[d].max(1);
            let frac = (sum * 1000) / cap;
            // Time dimension first: precedence orientations and chain bounds
            // propagate hardest there; then most-constrained pairs.
            (if d == TIME { 0 } else { 1 }, std::cmp::Reverse(frac), d, p)
        };
        branch_order.sort_by_key(score);
        let twin_pairs = twin_pair_table(instance, config, fixed_starts.is_some());
        Self {
            ctx: SearchContext {
                instance,
                config,
                sizes,
                caps,
                fixed_starts,
                branch_order,
                twin_pairs,
            },
            budget: SharedBudget::new(),
        }
    }

    /// Runs the complete search once, returning the result and the
    /// statistics aggregated over every thread.
    pub(crate) fn run(&self) -> (SearchResult, SolverStats) {
        let (result, stats) = self.run_inner();
        self.ctx.config.telemetry.finish(&stats);
        (result, stats)
    }

    fn run_inner(&self) -> (SearchResult, SolverStats) {
        // Tasks that cannot fit the container at all.
        for d in 0..3 {
            if self.ctx.sizes[d].iter().any(|&s| s > self.ctx.caps[d]) {
                return (SearchResult::Infeasible, SolverStats::default());
            }
        }
        let n = self.ctx.instance.task_count();
        // The state carries the per-dimension sizes so it can maintain the
        // oriented-chain labels incrementally (see `oriented_chain_exceeds`).
        let state = PackingState::with_sizes(n, self.ctx.sizes.clone());
        let mut root = Worker::new(&self.ctx, &self.budget, state, None);
        let mut queue = Vec::new();
        let rooted = root
            .seed(&mut queue)
            .and_then(|()| root.propagate(&mut queue));
        if rooted.is_err() {
            let result = match self.budget.stop_kind() {
                Some(kind) => SearchResult::Limit(kind),
                None => SearchResult::Infeasible,
            };
            return (result, root.stats);
        }
        let threads = self.ctx.config.effective_threads();
        if threads <= 1 {
            let result = match root.dfs() {
                Ok(Some(p)) => SearchResult::Feasible(p),
                Ok(None) => SearchResult::Infeasible,
                Err(()) => self.limit_result(),
            };
            return (result, root.stats);
        }
        self.run_parallel(root, threads)
    }

    fn limit_result(&self) -> SearchResult {
        SearchResult::Limit(self.budget.stop_kind().unwrap_or(LimitKind::Nodes))
    }

    /// Adaptive work-stealing parallel search. The full soundness and
    /// determinism argument lives in DESIGN.md ("Adaptive work-stealing
    /// parallel search"); in short: every worker runs the same
    /// deterministic DFS the sequential solver would run on its unit,
    /// units are disjoint and totally ordered by their priority paths, and
    /// [`Search::finalize`] combines the least feasible leaf with the
    /// least abandoned subtree — exactly the information needed to name
    /// the sequential answer.
    fn run_parallel(&self, root: Worker<'_>, threads: usize) -> (SearchResult, SolverStats) {
        // The root worker's state (already seeded and propagated) becomes
        // the first work unit; its stats seed the merged totals.
        let Worker {
            state,
            cursor,
            stats,
            ..
        } = root;
        let task_count = state.task_count();
        let scheduler = Scheduler::new(threads - 1);
        scheduler.push(
            WorkUnit {
                id: 0,
                priority: Vec::new(),
                state,
                cursor,
                pending: None,
            },
            false,
        );
        let total = Mutex::new(stats);
        let worker_body = |spawn: Option<&dyn Fn()>| {
            // The placeholder state is replaced by the first unit the
            // worker claims; it only sizes the reusable scratch sets.
            let state = PackingState::with_sizes(task_count, self.ctx.sizes.clone());
            let mut worker = Worker::new(&self.ctx, &self.budget, state, Some(&scheduler));
            worker.spawn = spawn;
            worker.run_queue();
            total
                .lock()
                .expect("no poisoned locks")
                .accumulate(&worker.stats);
        };
        std::thread::scope(|scope| {
            // The calling thread is worker 0 and the only one that starts
            // helpers — lazily, through this callback, when a queued unit
            // finds no idle worker (see `Worker::maybe_spawn_helper`). A
            // search that never splits exits the scope without having
            // spawned (or joined) a single thread.
            let spawn_helper = || {
                scope.spawn(|| worker_body(None));
            };
            worker_body(Some(&spawn_helper));
        });
        let stats = total.into_inner().expect("no poisoned locks");
        (self.finalize(scheduler), stats)
    }

    /// Combines the scheduler's records into the final verdict. This is
    /// **the** definition of the parallel search's outcome — and of its
    /// cancellation semantics:
    ///
    /// - **Feasible(incumbent)** iff a feasible leaf was found and no
    ///   subtree *before* it (priority path `<` the leaf path) was
    ///   abandoned unexplored. Every leaf the sequential search would have
    ///   visited first was then provably visited and rejected, so the
    ///   incumbent is exactly the sequential certificate.
    /// - Otherwise **Limit(kind)** if a stop (node/time budget or
    ///   cancellation) was requested: some subtree before the incumbent —
    ///   or the whole tree, if there is none — was left unexplored.
    /// - Otherwise **Infeasible**: nothing was abandoned (the
    ///   [`Scheduler::record_abandoned`] invariant — no stop, no incumbent,
    ///   hence no abandonment), so the tree was exhausted without an
    ///   accepted leaf.
    ///
    /// Units abandoned because they are *behind* the incumbent never block
    /// it: supersession requires `incumbent < unit.priority` and the
    /// incumbent path only ever decreases, so those records always compare
    /// `>` here. There is no fourth case — the old frontier scheduler's
    /// defensively-reachable `Cancelled` outcome is gone by construction.
    fn finalize(&self, scheduler: Scheduler) -> SearchResult {
        let mut queue = scheduler.queue.into_inner().expect("no poisoned locks");
        let mut min_abandoned = scheduler
            .min_abandoned
            .into_inner()
            .expect("no poisoned locks");
        // Units still queued were never entered; a stop is the only way
        // the scheduler shuts down with a non-empty queue.
        for unit in queue.units.drain(..) {
            debug_assert!(self.budget.stopped(), "drained units imply a stop");
            if min_abandoned.as_ref().is_none_or(|m| unit.priority < *m) {
                min_abandoned = Some(unit.priority);
            }
        }
        match scheduler.incumbent.into_inner().expect("no poisoned locks") {
            Some((leaf, placement)) if min_abandoned.is_none_or(|abandoned| abandoned > leaf) => {
                SearchResult::Feasible(placement)
            }
            _ => match self.budget.stop_kind() {
                Some(kind) => SearchResult::Limit(kind),
                None => SearchResult::Infeasible,
            },
        }
    }
}

/// One open branching level of the worker's current DFS path — the
/// explicit mirror of the recursion stack that work-stealing needs: the
/// shallowest level with `open` still set is the donor's best offer, and
/// the `choice` indices spell out the priority path for incumbent and
/// abandonment bookkeeping.
struct Level {
    /// The `(dim, pair)` slot branched at this level.
    slot: (usize, usize),
    /// Trail mark *before* the level's decision — the rollback target that
    /// reconstructs the branch point inside a cloned state.
    mark: usize,
    /// [`Worker::cursor`] at the branch point.
    cursor: usize,
    /// The not-yet-tried sibling choice; `take`n either by the owner on
    /// backtrack or by [`Worker::offer_split`] when donating it.
    open: Option<EdgeState>,
    /// Index (0 or 1) of the choice currently being explored.
    choice: u8,
}

/// The per-thread search: owns a [`PackingState`] and local statistics,
/// shares the context and budget with every other worker of the search.
struct Worker<'c> {
    ctx: &'c SearchContext<'c>,
    budget: &'c SharedBudget,
    state: PackingState,
    stats: SolverStats,
    /// The work-stealing scheduler; `None` in sequential mode, where the
    /// per-node scheduler hooks reduce to a single branch.
    scheduler: Option<&'c Scheduler>,
    /// Lazy helper-thread starter — `Some` only on worker 0, which spawns
    /// a helper whenever a queued unit has no idle worker to take it (see
    /// [`Worker::maybe_spawn_helper`]).
    spawn: Option<&'c dyn Fn()>,
    /// Id of the unit being searched ([`SearchEvent::subtree`]); 0 for the
    /// sequential search and the root unit.
    unit: usize,
    /// Priority path of the current unit's root (empty for the root unit
    /// and the sequential search).
    unit_priority: Vec<u8>,
    /// Open branching levels of the current unit, shallowest first.
    levels: Vec<Level>,
    /// Nodes expanded inside the current unit — the split-threshold gate.
    nodes_in_unit: u64,
    /// Last [`Scheduler::incumbent_epoch`] at which `superseded` was
    /// computed.
    seen_epoch: u64,
    /// Whether the incumbent precedes this unit (stable once true): the
    /// sequential search would have stopped before entering it, so the
    /// worker unwinds.
    superseded: bool,
    /// Events processed since the last in-propagation budget check. Reset
    /// at every cascade start so the budget-poll cadence (and thus any
    /// stop-flag observation point) depends only on the cascade, not on
    /// what the worker ran before it.
    propagation_ticks: u32,
    /// Reusable event queue for [`Worker::decide`] cascades; taken out with
    /// `mem::take` for the duration of a cascade so the per-node path never
    /// allocates in steady state.
    queue: Vec<Event>,
    /// Position in [`SearchContext::branch_order`] before which every slot
    /// is known assigned. Assignments are monotone within a subtree, so
    /// [`Worker::next_unassigned`] resumes here instead of rescanning;
    /// callers save/restore it around rollbacks.
    cursor: usize,
    /// Scratch candidate set for the propagation scans (contents are
    /// meaningless between calls). The fused kernels build each candidate
    /// expression in a single pass, so one set suffices.
    scan_a: BitSet,
    /// Scratch set for the per-`w` inner candidate filter of
    /// [`Worker::c4_scan`].
    c4_acc: BitSet,
    /// Reusable seed set for the C2 clique rule.
    clique_seed: BitSet,
    /// Reusable branch-and-bound scratch for the C2 clique rule.
    clique_ws: cliques::CliqueWorkspace,
    /// This worker's always-on activity beacon — a slot in the process
    /// global registry, released when the worker drops (see
    /// [`crate::beacon`]).
    beacon: Arc<ActivityBeacon>,
    /// Shadow of the published phase/rule/depth bits, so heartbeat ticks
    /// can republish without a read-modify-write.
    beacon_bits: u64,
    /// Wrapping activity epoch, bumped on every beacon store.
    beacon_epoch: u64,
}

impl<'c> Worker<'c> {
    fn new(
        ctx: &'c SearchContext<'c>,
        budget: &'c SharedBudget,
        state: PackingState,
        scheduler: Option<&'c Scheduler>,
    ) -> Self {
        let n = state.task_count();
        Self {
            ctx,
            budget,
            state,
            stats: SolverStats::default(),
            scheduler,
            spawn: None,
            unit: 0,
            unit_priority: Vec::new(),
            levels: Vec::new(),
            nodes_in_unit: 0,
            seen_epoch: 0,
            superseded: false,
            propagation_ticks: 0,
            queue: Vec::new(),
            cursor: 0,
            scan_a: BitSet::new(n),
            c4_acc: BitSet::new(n),
            clique_seed: BitSet::new(n),
            clique_ws: cliques::CliqueWorkspace::new(),
            beacon: beacon::global_registry().register(),
            beacon_bits: 0,
            beacon_epoch: 0,
        }
    }

    /// Publishes the activity beacon: one relaxed store, no clock reads,
    /// no allocation. Always on — the search behaves identically whether
    /// or not a sampler is attached.
    #[inline]
    fn beacon_mark(&mut self, phase: BeaconPhase, rule: u8, depth: u32) {
        self.beacon_bits = beacon::state_bits(phase, rule, depth);
        self.beacon_tick();
    }

    /// Republishes the current beacon state with a fresh epoch — the
    /// "still alive" heartbeat that stall detection watches.
    #[inline]
    fn beacon_tick(&mut self) {
        self.beacon_epoch = self.beacon_epoch.wrapping_add(1);
        self.beacon
            .publish(beacon::compose(self.beacon_bits, self.beacon_epoch));
    }

    /// Sends one telemetry event (no-op when no sink is configured). The
    /// timestamp is read from the shared search epoch only when a sink is
    /// installed, so disabled telemetry costs zero clock reads.
    fn emit(&self, depth: u32, kind: EventKind) {
        if !self.ctx.config.telemetry.is_enabled() {
            return;
        }
        self.ctx.config.telemetry.emit(SearchEvent {
            subtree: self.unit,
            depth,
            t_ns: self.budget.started.elapsed().as_nanos() as u64,
            kind,
        });
    }

    /// Starts a profiling timer when [`SolverConfig::profile`] is on; pair
    /// with [`Worker::lap`]. `None` (the default) costs zero clock reads.
    fn timer(&self) -> Option<Instant> {
        if self.ctx.config.profile {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Elapsed nanoseconds of a [`Worker::timer`], or `0` when profiling is
    /// off (so unconditional `+=` accumulation stays free of branches).
    fn lap(timer: Option<Instant>) -> u64 {
        timer.map_or(0, |t| t.elapsed().as_nanos() as u64)
    }

    /// Initial forcings: precedence arcs (time dimension), the must-overlap
    /// rule, and — for FixedS problems — the full time dimension.
    fn seed(&mut self, queue: &mut Vec<Event>) -> Result<(), Conflict> {
        let idx = self.state.pair_index();
        // Fixed schedule: decide every time slot from the given starts.
        if let Some(starts) = self.ctx.fixed_starts.clone() {
            for (p, u, v) in idx.iter() {
                let (su, eu) = (starts[u], starts[u] + self.ctx.sizes[TIME][u]);
                let (sv, ev) = (starts[v], starts[v] + self.ctx.sizes[TIME][v]);
                if su < ev && sv < eu {
                    self.force_state(TIME, p, EdgeState::Component, Conflict::C3, queue)?;
                } else {
                    self.force_state(TIME, p, EdgeState::Comparability, Conflict::C3, queue)?;
                    if eu <= sv {
                        self.force_arc(TIME, u, v, queue)?;
                    } else {
                        self.force_arc(TIME, v, u, queue)?;
                    }
                }
            }
        }
        // Precedence arcs become oriented comparability edges of time.
        for (u, v) in self.ctx.instance.precedence().arcs() {
            self.force_state(
                TIME,
                idx.index(u, v),
                EdgeState::Comparability,
                Conflict::Orientation,
                queue,
            )?;
            self.force_arc(TIME, u, v, queue)?;
        }
        // Must-overlap: pairs too big to sit side by side in a dimension.
        if self.ctx.config.must_overlap_rule {
            for d in 0..3 {
                for (p, u, v) in idx.iter() {
                    if self.ctx.sizes[d][u] + self.ctx.sizes[d][v] > self.ctx.caps[d] {
                        self.force_state(d, p, EdgeState::Component, Conflict::C2, queue)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Sets a slot, enqueueing the event; `on_conflict` is reported when the
    /// slot is already fixed to the opposite value (the rule that forced the
    /// assignment knows why the clash matters).
    fn force_state(
        &mut self,
        dim: usize,
        pair: usize,
        want: EdgeState,
        on_conflict: Conflict,
        queue: &mut Vec<Event>,
    ) -> Result<(), Conflict> {
        match self.state.state(dim, pair) {
            EdgeState::Unassigned => {
                self.state.assign(dim, pair, want);
                self.stats.propagated_fixes += 1;
                queue.push(Event::Fixed(dim, pair));
                Ok(())
            }
            s if s == want => Ok(()),
            _ => Err(on_conflict),
        }
    }

    /// Ensures the arc `u → v` in `dim` (comparability + orientation).
    fn force_arc(
        &mut self,
        dim: usize,
        u: usize,
        v: usize,
        queue: &mut Vec<Event>,
    ) -> Result<(), Conflict> {
        let pair = self.state.pair_index().index(u, v);
        match self.state.state(dim, pair) {
            EdgeState::Component => return Err(Conflict::Orientation),
            EdgeState::Unassigned => {
                self.force_state(
                    dim,
                    pair,
                    EdgeState::Comparability,
                    Conflict::Orientation,
                    queue,
                )?;
            }
            EdgeState::Comparability => {}
        }
        match self.state.orient(dim, pair) {
            Orient::None => {
                self.state.orient_arc(dim, u, v);
                self.stats.arc_fixations += 1;
                queue.push(Event::Arc(dim, u, v));
                Ok(())
            }
            _ if self.state.has_arc(dim, u, v) => Ok(()),
            _ => Err(Conflict::Orientation),
        }
    }

    /// Runs the root propagation cascade (seed consequences), with conflict
    /// accounting and telemetry.
    fn propagate(&mut self, queue: &mut Vec<Event>) -> Result<(), Conflict> {
        self.propagation_ticks = 0;
        self.beacon_mark(BeaconPhase::Propagate, 0, 0);
        let fixes_before = self.stats.propagated_fixes;
        let timer = self.timer();
        let result = self.propagate_inner(queue);
        self.attribute_cascade(timer, &result);
        match result {
            Ok(()) => self.emit(
                0,
                EventKind::Propagate {
                    fixes: self.stats.propagated_fixes - fixes_before,
                },
            ),
            Err(kind) => {
                self.beacon_mark(BeaconPhase::Propagate, kind.beacon_rule(), 0);
                self.count_conflict(kind);
                if let Some(rule) = kind.prune_rule() {
                    self.emit(0, EventKind::Prune { rule });
                }
                queue.clear();
            }
        }
        result
    }

    /// Books a cascade's elapsed time: refuting cascades bill the rule that
    /// fired (`SolverStats::prune_ns`), everything else — successful
    /// cascades and budget stops — bills `SolverStats::propagate_ns`.
    fn attribute_cascade(&mut self, timer: Option<Instant>, result: &Result<(), Conflict>) {
        if timer.is_none() {
            return;
        }
        let ns = Self::lap(timer);
        match result.as_ref().err().and_then(|kind| kind.prune_rule()) {
            Some(rule) => self.stats.prune_ns[rule.index()] += ns,
            None => self.stats.propagate_ns += ns,
        }
    }

    fn count_conflict(&mut self, kind: Conflict) {
        match kind {
            Conflict::C2 => self.stats.c2_conflicts += 1,
            Conflict::C3 => self.stats.c3_conflicts += 1,
            Conflict::C4 => self.stats.c4_conflicts += 1,
            Conflict::Orientation => self.stats.orientation_conflicts += 1,
            Conflict::Stopped => {}
        }
    }

    /// Budget poll from inside a propagation cascade: observes the global
    /// stop flag, the supersession of this unit, and — crucially — the
    /// wall-time limit, which otherwise would only be seen between nodes.
    fn propagation_checkpoint(&mut self) -> Result<(), Conflict> {
        self.beacon_tick();
        if self.budget.stopped() || self.check_superseded() {
            return Err(Conflict::Stopped);
        }
        if let Some(limit) = self.ctx.config.time_limit {
            if self.budget.started.elapsed() >= limit {
                self.budget.request_stop(LimitKind::Time);
                return Err(Conflict::Stopped);
            }
        }
        if self.ctx.config.cancel.is_cancelled() {
            self.budget.request_stop(LimitKind::Cancelled);
            return Err(Conflict::Stopped);
        }
        Ok(())
    }

    fn propagate_inner(&mut self, queue: &mut Vec<Event>) -> Result<(), Conflict> {
        while let Some(event) = queue.pop() {
            self.stats.propagation_events += 1;
            self.propagation_ticks = self.propagation_ticks.wrapping_add(1);
            if self
                .propagation_ticks
                .is_multiple_of(PROPAGATION_CHECK_INTERVAL)
            {
                self.propagation_checkpoint()?;
            }
            match event {
                Event::Fixed(d, p) => {
                    let (u, v) = self.state.pair_index().pair(p);
                    match self.state.state(d, p) {
                        EdgeState::Component => self.on_component(d, p, u, v, queue)?,
                        EdgeState::Comparability => self.on_comparability(d, p, u, v, queue)?,
                        EdgeState::Unassigned => unreachable!("events follow assignments"),
                    }
                }
                Event::Arc(d, a, b) => self.on_arc(d, a, b, queue)?,
            }
        }
        Ok(())
    }

    fn on_component(
        &mut self,
        d: usize,
        p: usize,
        u: usize,
        v: usize,
        queue: &mut Vec<Event>,
    ) -> Result<(), Conflict> {
        // C3: a pair must be separated in at least one dimension. The two
        // other dimensions, in ascending order (matching the filter this
        // replaces, without the per-event allocation).
        let others = match d {
            0 => [1, 2],
            1 => [0, 2],
            _ => [0, 1],
        };
        let s0 = self.state.state(others[0], p);
        let s1 = self.state.state(others[1], p);
        match (s0, s1) {
            (EdgeState::Component, EdgeState::Component) => return Err(Conflict::C3),
            (EdgeState::Component, EdgeState::Unassigned) => {
                self.force_state(others[1], p, EdgeState::Comparability, Conflict::C3, queue)?;
            }
            (EdgeState::Unassigned, EdgeState::Component) => {
                self.force_state(others[0], p, EdgeState::Comparability, Conflict::C3, queue)?;
            }
            _ => {}
        }
        if self.ctx.config.c4_rule {
            self.c4_scan(d, u, v, true, queue)?;
        }
        if self.ctx.config.orientation_rules {
            // A new component edge (u, v) links comparability edges at any
            // common comparability-neighbor w: w→u ⇔ w→v. Candidates are
            // exactly compar(u) ∩ compar(v) — the loop body only orients
            // pairs at the current w, so the snapshot cannot miss anyone
            // (and u, v are never comparability-neighbors of themselves).
            let cg = self.state.comparability_graph(d);
            self.scan_a.intersect_into(cg.neighbors(u), cg.neighbors(v));
            let mut from = 0;
            while let Some(w) = self.scan_a.next_at_or_after(from) {
                from = w + 1;
                if self.state.has_arc(d, w, u) {
                    self.force_arc(d, w, v, queue)?;
                }
                if self.state.has_arc(d, u, w) {
                    self.force_arc(d, v, w, queue)?;
                }
                if self.state.has_arc(d, w, v) {
                    self.force_arc(d, w, u, queue)?;
                }
                if self.state.has_arc(d, v, w) {
                    self.force_arc(d, u, w, queue)?;
                }
            }
        }
        Ok(())
    }

    fn on_comparability(
        &mut self,
        d: usize,
        p: usize,
        u: usize,
        v: usize,
        queue: &mut Vec<Event>,
    ) -> Result<(), Conflict> {
        // C2, cheapest form: the pair itself is a chain.
        if self.ctx.sizes[d][u] + self.ctx.sizes[d][v] > self.ctx.caps[d] {
            return Err(Conflict::C2);
        }
        // C2, clique form: only cliques through the new edge can newly
        // violate the bound.
        if self.ctx.config.clique_rule {
            self.clique_seed.clear();
            self.clique_seed.insert(u);
            self.clique_seed.insert(v);
            let best = cliques::max_weight_clique_weight_containing(
                &mut self.clique_ws,
                self.state.comparability_graph(d),
                &self.ctx.sizes[d],
                &self.clique_seed,
            )
            .expect("a fixed comparability edge is a clique");
            if best > self.ctx.caps[d] {
                return Err(Conflict::C2);
            }
        }
        if self.ctx.config.c4_rule {
            self.c4_scan(d, u, v, false, queue)?;
        }
        // Twin symmetry: interchangeable tasks separated in time go in id
        // order. Swapping two twins is an automorphism of the instance, so
        // restricting to the sorted representative loses no packings.
        if d == TIME && self.ctx.twin_pairs[p] {
            self.force_arc(d, u.min(v), u.max(v), queue)?;
        }
        if self.ctx.config.orientation_rules {
            // D1 with the new comparability edge as one of the pair-sharing
            // edges: (u,v) & (u,w) comparability with (v,w) component means
            // u→v ⇔ u→w (and symmetrically at v). Candidates are
            // (comp(v) ∩ compar(u)) ∪ (comp(u) ∩ compar(v)); the loop body
            // only orients the pair (u, v) itself, so no new candidates can
            // appear mid-scan and the snapshot is exact.
            let comp = self.state.component_graph(d);
            let compar = self.state.comparability_graph(d);
            self.scan_a.intersect2_union_into(
                comp.neighbors(v),
                compar.neighbors(u),
                comp.neighbors(u),
                compar.neighbors(v),
            );
            let mut from = 0;
            while let Some(w) = self.scan_a.next_at_or_after(from) {
                from = w + 1;
                let vw_component = self.state.component_graph(d).has_edge(v, w);
                let uw_component = self.state.component_graph(d).has_edge(u, w);
                let uw_comparability = self.state.comparability_graph(d).has_edge(u, w);
                let vw_comparability = self.state.comparability_graph(d).has_edge(v, w);
                if vw_component && uw_comparability {
                    if self.state.has_arc(d, u, w) {
                        self.force_arc(d, u, v, queue)?;
                    }
                    if self.state.has_arc(d, w, u) {
                        self.force_arc(d, v, u, queue)?;
                    }
                }
                if uw_component && vw_comparability {
                    if self.state.has_arc(d, v, w) {
                        self.force_arc(d, v, u, queue)?;
                    }
                    if self.state.has_arc(d, w, v) {
                        self.force_arc(d, u, v, queue)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// D1/D2 consequences of a newly oriented arc `a → b` in `dim`.
    fn on_arc(
        &mut self,
        d: usize,
        a: usize,
        b: usize,
        queue: &mut Vec<Event>,
    ) -> Result<(), Conflict> {
        let idx = self.state.pair_index();
        // Candidates: the D1 patterns need a component edge at one end and
        // a comparability edge at the other — (compar(a) ∩ comp(b)) ∪
        // (comp(a) ∩ compar(b)) — and the D2 transitivity patterns need an
        // existing arc b→w or w→a. The loop body only touches pairs (a, w)
        // and (w, b) of the *current* w, which cannot add later vertices to
        // any of these rows, so the snapshot is exact.
        let comp = self.state.component_graph(d);
        let compar = self.state.comparability_graph(d);
        self.scan_a.intersect2_union_into(
            compar.neighbors(a),
            comp.neighbors(b),
            comp.neighbors(a),
            compar.neighbors(b),
        );
        self.scan_a.union_with(self.state.out_neighbors(d, b));
        self.scan_a.union_with(self.state.in_neighbors(d, a));
        let mut from = 0;
        while let Some(w) = self.scan_a.next_at_or_after(from) {
            from = w + 1;
            let aw = self.state.state(d, idx.index(a, w));
            let bw = self.state.state(d, idx.index(b, w));
            // D1: {a,b},{a,w} comparability + {b,w} component: a→b ⇒ a→w.
            if aw == EdgeState::Comparability && bw == EdgeState::Component {
                self.force_arc(d, a, w, queue)?;
            }
            // D1 at b: {b,a},{b,w} comparability + {a,w} component:
            // a→b (= not b→a) ⇒ not b→w ⇒ w→b.
            if bw == EdgeState::Comparability && aw == EdgeState::Component {
                self.force_arc(d, w, b, queue)?;
            }
            // D2: a→b, b→w ⇒ a→w (forcing {a,w} comparability if open).
            if bw == EdgeState::Comparability && self.state.has_arc(d, b, w) {
                self.force_arc(d, a, w, queue)?;
            }
            // D2: w→a, a→b ⇒ w→b.
            if aw == EdgeState::Comparability && self.state.has_arc(d, w, a) {
                self.force_arc(d, w, b, queue)?;
            }
        }
        // Oriented-chain bound: every fixed arc survives to the leaf
        // realization, so a weighted chain over fixed arcs longer than the
        // container refutes the whole subtree. This is where a tight C2
        // clique plus precedence structure (e.g. "the last multiplier always
        // has an ALU successor") becomes visible mid-search.
        if self.oriented_chain_exceeds(d) {
            return Err(Conflict::C2);
        }
        Ok(())
    }

    /// Longest vertex-weighted path over the fixed arcs of `dim` exceeds
    /// the container (cycles count as exceeded; D2 closure normally rules
    /// them out earlier).
    ///
    /// O(1): the state maintains the longest-path labels and the cycle flag
    /// incrementally under [`PackingState::orient_arc`]/rollback, so this
    /// is a pair of field reads instead of a from-scratch topological sweep
    /// per arc event. The labels freeze while a cycle is live, which is
    /// sound here: a cyclic digraph refutes the cascade by itself, and the
    /// caller rolls the whole cascade back.
    fn oriented_chain_exceeds(&self, d: usize) -> bool {
        self.state.has_cycle(d) || self.state.max_longest_path(d) > self.ctx.caps[d]
    }

    /// Induced-C4 avoidance around a newly fixed slot (paper §3.3, forbidden
    /// configuration 1). `as_cycle_edge` selects the role of `(u, v)`.
    ///
    /// The forbidden pattern on an ordered 4-cycle `a-b-c-d` is: all four
    /// cycle edges component, both chords `{a,c}`, `{b,d}` comparability.
    /// Complete pattern = conflict; pattern missing exactly one open slot =
    /// force that slot to the opposite value.
    /// Candidate filtering (DESIGN.md, "Incremental propagation"): the
    /// outer `w` keeps a *live* O(1) viability test — in-scan forcings can
    /// only kill later `w` patterns, never revive them, so skipping
    /// nonviable `w` drops exactly the no-op iterations. The inner `x` uses
    /// a per-`w` bitset snapshot: a live pattern has at most one open slot,
    /// so at least two of `x`'s three slots are already fixed right, and
    /// in-scan forcings only write term-row positions at `u`, `v`, `w`, or
    /// already-visited `x`, so the snapshot cannot miss a candidate. Role 2
    /// is symmetric under `w ↔ x` (same unordered cycle/chord pattern), and
    /// the `(min, max)` visit comes first and forces the anti-pattern
    /// value, so the swapped revisit was always a dead no-op — it is
    /// skipped via `x > w`.
    fn c4_scan(
        &mut self,
        d: usize,
        u: usize,
        v: usize,
        as_cycle_edge: bool,
        queue: &mut Vec<Event>,
    ) -> Result<(), Conflict> {
        let n = self.state.task_count();
        let idx = self.state.pair_index();
        for w in 0..n {
            if w == u || w == v {
                continue;
            }
            let comp = self.state.component_graph(d);
            let compar = self.state.comparability_graph(d);
            // A viable `w` has no wrong-state slot of its own and at most
            // one open one (two opens at `w` already exceed the pattern's
            // single-open budget for every `x`).
            let viable_w = if as_cycle_edge {
                // Role 1: (v,w) is a cycle edge, (u,w) a chord.
                !compar.has_edge(v, w)
                    && !comp.has_edge(u, w)
                    && (comp.has_edge(v, w) || compar.has_edge(u, w))
            } else {
                // Role 2: (u,w) and (w,v) are cycle edges.
                !compar.has_edge(u, w)
                    && !compar.has_edge(v, w)
                    && (comp.has_edge(u, w) || comp.has_edge(v, w))
            };
            if !viable_w {
                continue;
            }
            // x's three slots, as graph rows: at least two must already be
            // fixed right, so candidates are the pairwise intersections.
            let (ra, rb, rc) = if as_cycle_edge {
                // (w,x) component, (x,u) component, (v,x) comparability.
                (comp.neighbors(w), comp.neighbors(u), compar.neighbors(v))
            } else {
                // (v,x) component, (x,u) component, (w,x) comparability.
                (comp.neighbors(v), comp.neighbors(u), compar.neighbors(w))
            };
            // A live pattern has one open slot, so x must lie in at least
            // two of the three rows: one fused majority pass replaces the
            // three intersections and two unions.
            self.c4_acc.majority_into(ra, rb, rc);
            let mut from = if as_cycle_edge { 0 } else { w + 1 };
            while let Some(x) = self.c4_acc.next_at_or_after(from) {
                from = x + 1;
                if x == u || x == v || x == w {
                    continue;
                }
                // Role 1: (u,v) is the cycle edge a-b; cycle u-v-w-x.
                // Role 2: (u,v) is the chord a-c; cycle u-w-v-x.
                let (cyc, chords) = if as_cycle_edge {
                    (
                        [
                            idx.index(u, v),
                            idx.index(v, w),
                            idx.index(w, x),
                            idx.index(x, u),
                        ],
                        [idx.index(u, w), idx.index(v, x)],
                    )
                } else {
                    (
                        [
                            idx.index(u, w),
                            idx.index(w, v),
                            idx.index(v, x),
                            idx.index(x, u),
                        ],
                        [idx.index(u, v), idx.index(w, x)],
                    )
                };
                let mut open: Option<(usize, EdgeState)> = None;
                let mut dead = false;
                for &p in &cyc {
                    match self.state.state(d, p) {
                        EdgeState::Component => {}
                        EdgeState::Unassigned => {
                            if open.replace((p, EdgeState::Comparability)).is_some() {
                                dead = true;
                                break;
                            }
                        }
                        EdgeState::Comparability => {
                            dead = true;
                            break;
                        }
                    }
                }
                if !dead {
                    for &p in &chords {
                        match self.state.state(d, p) {
                            EdgeState::Comparability => {}
                            EdgeState::Unassigned => {
                                if open.replace((p, EdgeState::Component)).is_some() {
                                    dead = true;
                                    break;
                                }
                            }
                            EdgeState::Component => {
                                dead = true;
                                break;
                            }
                        }
                    }
                }
                if dead {
                    continue;
                }
                match open {
                    None => return Err(Conflict::C4),
                    Some((p, forced)) => self.force_state(d, p, forced, Conflict::C4, queue)?,
                }
            }
        }
        Ok(())
    }

    /// First unassigned slot in branching order, resuming from the cursor:
    /// every slot before it is known assigned (assignments are monotone
    /// within a subtree; `dfs_at` restores the cursor with every rollback,
    /// and a stolen unit carries its donor's cursor), so the amortized cost
    /// per node is O(1) instead of a full rescan of `branch_order`.
    fn next_unassigned(&mut self) -> Option<(usize, usize)> {
        while let Some(&(d, p)) = self.ctx.branch_order.get(self.cursor) {
            if self.state.state(d, p) == EdgeState::Unassigned {
                return Some((d, p));
            }
            self.cursor += 1;
        }
        None
    }

    /// Charges one node against the *global* budget; `true` means stop.
    fn out_of_budget(&mut self) -> bool {
        self.stats.budget_checks += 1;
        let total = self.budget.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.ctx.config.node_limit {
            if total >= limit {
                self.budget.request_stop(LimitKind::Nodes);
                return true;
            }
        }
        if let Some(limit) = self.ctx.config.time_limit {
            // Polled at the first node (so an already-expired limit stops
            // the search before any work) and every 64th thereafter to
            // amortize the clock read.
            if (total == 1 || total.is_multiple_of(64)) && self.budget.started.elapsed() >= limit {
                self.budget.request_stop(LimitKind::Time);
                return true;
            }
        }
        if self.ctx.config.cancel.is_cancelled() {
            self.budget.request_stop(LimitKind::Cancelled);
            return true;
        }
        if self.budget.stopped() {
            return true;
        }
        self.check_superseded()
    }

    /// Whether the incumbent has moved in front of this unit. Cached per
    /// incumbent epoch, so the steady state (no new feasible leaves) costs
    /// one relaxed atomic load; the incumbent mutex is touched only when
    /// the epoch advances. Supersession is stable: the incumbent path only
    /// decreases, so it never un-precedes a unit.
    fn check_superseded(&mut self) -> bool {
        let Some(scheduler) = self.scheduler else {
            return false;
        };
        let epoch = scheduler.incumbent_epoch.load(Ordering::Relaxed);
        if epoch != self.seen_epoch {
            self.seen_epoch = epoch;
            self.superseded = scheduler.behind_incumbent(&self.unit_priority);
        }
        self.superseded
    }

    /// The full branch-choice path of the node the worker currently sits
    /// at: the unit's priority followed by the live choice index of every
    /// open level.
    fn current_path(&self) -> Vec<u8> {
        let mut path = self.unit_priority.clone();
        path.extend(self.levels.iter().map(|level| level.choice));
        path
    }

    /// The scheduler's per-node hook: counts the node against the split
    /// threshold and, when this unit has proven deep enough *and* a worker
    /// is starving, donates the shallowest open branch as a new unit. The
    /// clone + rollback only happens on an actual offer, so the common
    /// path is two relaxed atomic loads.
    fn offer_split(&mut self) {
        let Some(scheduler) = self.scheduler else {
            return;
        };
        // Worker 0 also reacts here — once per node — to units queued by
        // other workers that found nobody idle.
        self.maybe_spawn_helper();
        self.nodes_in_unit += 1;
        if self.nodes_in_unit < self.ctx.config.split_after_nodes.max(1) || self.superseded {
            return;
        }
        let idle = scheduler.idle.load(Ordering::Relaxed);
        let pending = scheduler.pending.load(Ordering::Relaxed);
        // Not-yet-started helpers count as demand: they are spawned the
        // moment a queued unit would otherwise starve.
        let demand = idle
            .saturating_add(scheduler.unspawned())
            .saturating_add(self.ctx.config.split_backlog);
        if pending >= demand {
            return;
        }
        // Donate the *shallowest* open branch: it is the largest subtree
        // this worker can give away, and taking it out of `open` removes
        // it from the owner's backtracking — units stay disjoint.
        let Some(i) = self.levels.iter().position(|level| level.open.is_some()) else {
            return;
        };
        let donated = self.levels[i].open.take().expect("position found open");
        let (d, p) = self.levels[i].slot;
        let mut state = self.state.clone();
        // The clone carries the trail, so rolling back to the ancestor's
        // mark reconstructs the exact branch-point state.
        state.rollback(self.levels[i].mark);
        let mut priority = self.unit_priority.clone();
        priority.extend(self.levels[..i].iter().map(|level| level.choice));
        // An open sibling is always the second choice at its node.
        priority.push(1);
        scheduler.push(
            WorkUnit {
                id: scheduler.next_unit.fetch_add(1, Ordering::Relaxed),
                priority,
                state,
                cursor: self.levels[i].cursor,
                pending: Some((d, p, donated)),
            },
            self.budget.stopped(),
        );
        self.maybe_spawn_helper();
    }

    /// Worker 0's lazy thread starter: if a queued unit has no idle worker
    /// to take it and the thread budget allows, start one helper. At most
    /// one spawn per call — sustained demand (checked once per node) ramps
    /// the pool up, a transient blip does not. On helpers (and in
    /// sequential mode) `spawn` is `None` and this is a no-op.
    fn maybe_spawn_helper(&self) {
        let (Some(scheduler), Some(spawn)) = (self.scheduler, self.spawn) else {
            return;
        };
        if scheduler.pending.load(Ordering::Relaxed) <= scheduler.idle.load(Ordering::Relaxed) {
            return;
        }
        let spawned = scheduler.spawned.load(Ordering::Relaxed);
        if spawned < scheduler.helpers
            && scheduler
                .spawned
                .compare_exchange(spawned, spawned + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            spawn();
        }
    }

    /// The parallel worker loop: claim the depth-first-least queued unit,
    /// search it, repeat; parks on the scheduler condvar while the queue
    /// is empty and exits when the search is exhausted or stopped.
    fn run_queue(&mut self) {
        let scheduler = self.scheduler.expect("run_queue is parallel-only");
        while let Some(unit) = self.claim_unit(scheduler) {
            // Claiming may have left further units pending with nobody
            // idle — worker 0 starts a helper for them before diving in.
            self.maybe_spawn_helper();
            self.run_unit(unit, scheduler);
            let mut queue = scheduler.queue.lock().expect("no poisoned locks");
            queue.active -= 1;
            if self.budget.stopped() || (queue.active == 0 && queue.units.is_empty()) {
                queue.done = true;
                drop(queue);
                scheduler.work.notify_all();
            }
        }
    }

    /// Blocks until a unit is available (returning it with `active`
    /// incremented) or the scheduler is done (`None`). Units already
    /// behind the incumbent are dropped here — the sequential search would
    /// have stopped before entering them.
    fn claim_unit(&mut self, scheduler: &Scheduler) -> Option<WorkUnit> {
        let mut queue = scheduler.queue.lock().expect("no poisoned locks");
        loop {
            if queue.done {
                return None;
            }
            if let Some(unit) = queue.take_least() {
                scheduler
                    .pending
                    .store(queue.units.len(), Ordering::Relaxed);
                if scheduler.behind_incumbent(&unit.priority) {
                    scheduler.record_abandoned(unit.priority, self.budget.stopped());
                    continue;
                }
                queue.active += 1;
                return Some(unit);
            }
            if queue.active == 0 {
                queue.done = true;
                scheduler.work.notify_all();
                return None;
            }
            self.beacon_mark(BeaconPhase::Idle, 0, 0);
            scheduler.idle.fetch_add(1, Ordering::Relaxed);
            queue = scheduler.work.wait(queue).expect("no poisoned locks");
            scheduler.idle.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Searches one work unit to its end: exhaustion, a feasible leaf
    /// (recorded as incumbent at the leaf itself), or an abort — whose
    /// path is recorded so [`Search::finalize`] knows what was left
    /// unexplored.
    fn run_unit(&mut self, unit: WorkUnit, scheduler: &Scheduler) {
        let WorkUnit {
            id,
            priority,
            state,
            cursor,
            pending,
        } = unit;
        self.unit = id;
        self.unit_priority = priority;
        self.state = state;
        self.cursor = cursor;
        self.nodes_in_unit = 0;
        self.levels.clear();
        self.seen_epoch = scheduler.incumbent_epoch.load(Ordering::Relaxed);
        self.superseded = scheduler.behind_incumbent(&self.unit_priority);
        let result = match pending {
            Some((d, p, choice)) => {
                // The unit root is the donated sibling: its parent node is
                // already recorded and budget-charged by the donor, so
                // apply the decision and descend without re-recording.
                let depth = self.unit_priority.len() as u32 - 1;
                match self.decide(d, p, choice, depth) {
                    Ok(()) => match self.dfs_at(depth + 1) {
                        Ok(None) => {
                            self.emit(depth, EventKind::Backtrack);
                            Ok(None)
                        }
                        other => other,
                    },
                    Err(Conflict::Stopped) => Err(()),
                    Err(_) => {
                        self.emit(depth, EventKind::Backtrack);
                        Ok(None)
                    }
                }
            }
            None => self.dfs_at(self.unit_priority.len() as u32),
        };
        if result.is_err() {
            // `levels` is intentionally not unwound on the stop path: the
            // live choice indices name the exact node the abort happened
            // at, which is the least unexplored point of this unit.
            scheduler.record_abandoned(self.current_path(), self.budget.stopped());
        }
    }

    /// One branching decision plus its propagation cascade: fixes the slot,
    /// closes the consequences, and handles conflict accounting and
    /// telemetry in one place. The in-cascade budget counter restarts here,
    /// so the number of in-cascade polls depends only on the cascade itself
    /// (not on what the worker ran before it).
    fn decide(
        &mut self,
        d: usize,
        p: usize,
        choice: EdgeState,
        depth: u32,
    ) -> Result<(), Conflict> {
        self.emit(
            depth,
            EventKind::Branch {
                dim: d,
                pair: p,
                component: choice == EdgeState::Component,
            },
        );
        self.propagation_ticks = 0;
        self.beacon_mark(BeaconPhase::Propagate, 0, depth);
        let fixes_before = self.stats.propagated_fixes;
        // Reuse the worker-owned queue (taken out for the borrow, returned
        // below): the steady-state per-node path allocates nothing.
        let mut queue = std::mem::take(&mut self.queue);
        queue.clear();
        let timer = self.timer();
        let result = self
            .force_state(d, p, choice, Conflict::C3, &mut queue)
            .and_then(|()| self.propagate_inner(&mut queue));
        self.queue = queue;
        self.attribute_cascade(timer, &result);
        match result {
            Ok(()) => self.emit(
                depth,
                EventKind::Propagate {
                    // The branched slot itself is not propagation yield.
                    fixes: self.stats.propagated_fixes - fixes_before - 1,
                },
            ),
            Err(kind) => {
                self.beacon_mark(BeaconPhase::Propagate, kind.beacon_rule(), depth);
                self.count_conflict(kind);
                if let Some(rule) = kind.prune_rule() {
                    self.emit(depth, EventKind::Prune { rule });
                }
            }
        }
        result
    }

    /// DFS over the remaining slots (sequential entry point). `Ok(Some)` =
    /// feasible with certificate; `Ok(None)` = subtree exhausted;
    /// `Err(())` = resource limit or cancellation (the caller consults the
    /// shared budget for the cause).
    fn dfs(&mut self) -> Result<Option<Placement>, ()> {
        self.dfs_at(0)
    }

    /// One DFS node at global branching `depth`. The explicit [`Level`]
    /// stack mirrors the recursion: each node pushes its untried sibling
    /// as `open`, which either the owner takes on backtrack or
    /// [`Worker::offer_split`] donates to another worker. On the stop path
    /// (`Err`) the stack is deliberately *not* unwound — the live choice
    /// indices name the abort point for [`Worker::run_unit`].
    fn dfs_at(&mut self, depth: u32) -> Result<Option<Placement>, ()> {
        let Some((d, p)) = self.next_unassigned() else {
            return Ok(self.check_leaf(depth));
        };
        self.stats.record_node(depth as usize);
        self.beacon_mark(BeaconPhase::Expand, 0, depth);
        if self.out_of_budget() {
            return Err(());
        }
        let [first, second] = if self.ctx.config.component_first {
            [EdgeState::Component, EdgeState::Comparability]
        } else {
            [EdgeState::Comparability, EdgeState::Component]
        };
        let level = self.levels.len();
        self.levels.push(Level {
            slot: (d, p),
            mark: self.state.mark(),
            cursor: self.cursor,
            open: Some(second),
            choice: 0,
        });
        self.offer_split();
        let mut next_choice = Some(first);
        while let Some(choice) = next_choice {
            let (mark, cursor) = (self.levels[level].mark, self.levels[level].cursor);
            match self.decide(d, p, choice, depth) {
                Ok(()) => match self.dfs_at(depth + 1) {
                    Ok(Some(placement)) => {
                        self.levels.pop();
                        return Ok(Some(placement));
                    }
                    Ok(None) => {}
                    Err(()) => return Err(()),
                },
                Err(Conflict::Stopped) => return Err(()),
                Err(_) => {}
            }
            self.state.rollback(mark);
            self.cursor = cursor;
            self.beacon_mark(BeaconPhase::Backtrack, 0, depth);
            self.emit(depth, EventKind::Backtrack);
            next_choice = self.levels[level].open.take();
            if next_choice.is_some() {
                self.levels[level].choice = 1;
            }
        }
        self.levels.pop();
        Ok(None)
    }

    /// Full leaf acceptance with telemetry: realizes and verifies, then
    /// reports the accept/reject decision at `depth`. In parallel mode an
    /// accepted leaf is recorded as incumbent right here, while the level
    /// stack still spells out its full path.
    fn check_leaf(&mut self, depth: u32) -> Option<Placement> {
        self.beacon_mark(BeaconPhase::Realize, 0, depth);
        let timer = self.timer();
        let placement = self.realize_leaf();
        if timer.is_some() {
            self.stats.realize_ns += Self::lap(timer);
        }
        self.emit(
            depth,
            EventKind::Leaf {
                accepted: placement.is_some(),
            },
        );
        if let (Some(scheduler), Some(placement)) = (self.scheduler, &placement) {
            scheduler.record_feasible(self.current_path(), placement.clone());
        }
        placement
    }

    /// Full leaf acceptance: realize every dimension, verify geometrically.
    fn realize_leaf(&mut self) -> Option<Placement> {
        debug_assert_eq!(
            self.state.unassigned_count(),
            0,
            "leaves are fully assigned"
        );
        self.stats.leaves += 1;
        let n = self.state.task_count();
        let mut origins = vec![[0u64; 3]; n];
        for d in 0..3 {
            if d == TIME {
                if let Some(starts) = &self.ctx.fixed_starts {
                    for (origin, &s) in origins.iter_mut().zip(starts.iter()) {
                        origin[d] = s;
                    }
                    continue;
                }
            }
            let comp = self.state.comparability_graph(d);
            // Seeds come from the maintained arc list (insertion order).
            // The D1/D2 closure inside the orientation engine is a least
            // fixpoint, so the seed order cannot change the result.
            let seeds = self.state.arcs(d).iter().copied();
            let Ok(order) = transitively_orient_extending(comp, seeds) else {
                self.stats.leaf_rejections += 1;
                return None;
            };
            let realization = realize_from_order(&order, &self.ctx.sizes[d]);
            if realization.extent > self.ctx.caps[d] {
                self.stats.leaf_rejections += 1;
                return None;
            }
            for (origin, &s) in origins.iter_mut().zip(realization.starts.iter()) {
                origin[d] = s;
            }
        }
        let placement = Placement::new(origins, self.ctx.instance);
        if placement.verify(self.ctx.instance).is_ok() {
            Some(placement)
        } else {
            self.stats.leaf_rejections += 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{Chip, Task};

    fn solve(instance: &Instance, config: &SolverConfig) -> SearchResult {
        Search::new(instance, config).run().0
    }

    fn tiny(horizon: u64, with_arc: bool) -> Instance {
        let mut b = Instance::builder()
            .chip(Chip::square(2))
            .horizon(horizon)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2));
        if with_arc {
            b = b.precedence("a", "b");
        }
        b.build().expect("valid")
    }

    #[test]
    fn serial_pair_found() {
        let i = tiny(4, true);
        match solve(&i, &SolverConfig::default()) {
            SearchResult::Feasible(p) => {
                assert_eq!(p.verify(&i), Ok(()));
                // precedence forces a before b
                assert!(p.task_box(0).end(Dim::Time) <= p.task_box(1).start(Dim::Time));
            }
            _ => panic!("expected feasible"),
        }
    }

    #[test]
    fn too_tight_horizon_is_infeasible() {
        let i = tiny(3, true);
        assert!(matches!(
            solve(&i, &SolverConfig::default()),
            SearchResult::Infeasible
        ));
        // Also with every acceleration off — pure search must agree.
        assert!(matches!(
            solve(&i, &SolverConfig::bare()),
            SearchResult::Infeasible
        ));
    }

    #[test]
    fn no_precedence_still_packs() {
        let i = tiny(4, false);
        assert!(matches!(
            solve(&i, &SolverConfig::default()),
            SearchResult::Feasible(_)
        ));
    }

    #[test]
    fn oversized_task_infeasible_immediately() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(2)
            .task(Task::new("big", 3, 1, 1))
            .build()
            .expect("valid");
        assert!(matches!(
            solve(&i, &SolverConfig::default()),
            SearchResult::Infeasible
        ));
    }

    #[test]
    fn empty_instance_is_feasible() {
        let i = Instance::builder()
            .chip(Chip::square(1))
            .horizon(1)
            .build()
            .expect("valid");
        assert!(matches!(
            solve(&i, &SolverConfig::default()),
            SearchResult::Feasible(_)
        ));
    }

    #[test]
    fn node_limit_reports_limit() {
        // A nontrivial instance with node_limit 0 must stop, not answer.
        let i = Instance::builder()
            .chip(Chip::square(4))
            .horizon(8)
            .tasks((0..5).map(|k| Task::new(format!("t{k}"), 2, 2, 2)))
            .build()
            .expect("valid");
        let config = SolverConfig {
            node_limit: Some(0),
            ..SolverConfig::default()
        };
        assert!(matches!(
            solve(&i, &config),
            SearchResult::Limit(LimitKind::Nodes)
        ));
    }

    #[test]
    fn pre_cancelled_token_stops_the_search() {
        // Cancellation set before the search starts must surface as a
        // Cancelled limit, not a verdict.
        let i = Instance::builder()
            .chip(Chip::square(4))
            .horizon(8)
            .tasks((0..5).map(|k| Task::new(format!("t{k}"), 2, 2, 2)))
            .build()
            .expect("valid");
        let config = SolverConfig::default();
        config.cancel.cancel();
        assert!(matches!(
            solve(&i, &config),
            SearchResult::Limit(LimitKind::Cancelled)
        ));
    }

    #[test]
    fn fixed_starts_solves_spatial_subproblem() {
        // Two 2x2 tasks overlapping in time on a 4x2 chip: must separate in x.
        let i = Instance::builder()
            .chip(Chip::new(4, 2))
            .horizon(2)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .build()
            .expect("valid");
        let config = SolverConfig::default();
        let s = Search::with_fixed_starts(&i, &config, Some(vec![0, 0]));
        match s.run().0 {
            SearchResult::Feasible(p) => {
                assert_eq!(p.verify(&i), Ok(()));
                assert_eq!(p.task_box(0).start(Dim::Time), 0);
                assert_eq!(p.task_box(1).start(Dim::Time), 0);
            }
            _ => panic!("expected feasible"),
        }
        // Same but on a 2x2 chip: spatially impossible.
        let cramped = i.with_chip(Chip::square(2));
        let s = Search::with_fixed_starts(&cramped, &config, Some(vec![0, 0]));
        assert!(matches!(s.run().0, SearchResult::Infeasible));
    }
}

#[cfg(test)]
mod propagation_tests {
    use super::*;
    use recopack_model::{Chip, Task};

    /// Precedence through a shared time window: D1/D2 must orient the third
    /// task relative to the chain even though no arc names it.
    ///
    /// Setup: full-chip tasks a -> c (arcs), plus b forced to overlap
    /// neither (full chip, horizon exactly fits all three). The chain bound
    /// and orientation rules must still find the serialization.
    #[test]
    fn three_full_chip_tasks_serialize() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(6)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .task(Task::new("c", 2, 2, 2))
            .precedence("a", "c")
            .build()
            .expect("valid");
        let config = SolverConfig::default();
        let (result, stats) = Search::new(&i, &config).run();
        match result {
            SearchResult::Feasible(p) => {
                assert_eq!(p.verify(&i), Ok(()));
                assert_eq!(p.makespan(), 6);
            }
            _ => panic!("exact fit must be found"),
        }
        let _ = stats;
        // One cycle less is impossible; the oriented chain bound must see it
        // without a large tree.
        let tight = i.with_horizon(5);
        let (result, stats) = Search::new(&tight, &config).run();
        assert!(matches!(result, SearchResult::Infeasible));
        assert!(stats.nodes <= 8, "expected tiny tree, got {}", stats.nodes);
    }

    /// The must-overlap rule plus C3: two tasks too wide and too tall to
    /// separate spatially are forced apart in time at the root.
    #[test]
    fn must_overlap_forces_time_separation_at_root() {
        let i = Instance::builder()
            .chip(Chip::square(3))
            .horizon(4)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .build()
            .expect("valid");
        let config = SolverConfig::default();
        let (result, stats) = Search::new(&i, &config).run();
        match result {
            SearchResult::Feasible(p) => {
                let (a, b) = (p.task_box(0), p.task_box(1));
                assert!(
                    a.end(Dim::Time) <= b.start(Dim::Time)
                        || b.end(Dim::Time) <= a.start(Dim::Time),
                    "2+2 > 3 in both spatial dimensions forces time separation"
                );
                // Nothing was left to branch on.
                assert_eq!(stats.nodes, 0);
            }
            _ => panic!("serialization fits the horizon"),
        }
    }

    /// The C2 clique rule: three tasks pairwise disjoint in time must chain,
    /// and the chain exceeds the horizon -> refuted without leaves.
    #[test]
    fn clique_rule_refutes_over_long_chains() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(5)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .task(Task::new("c", 2, 2, 2))
            .build()
            .expect("valid");
        let config = SolverConfig {
            use_bounds: false,
            use_heuristics: false,
            ..SolverConfig::default()
        };
        let (result, stats) = Search::new(&i, &config).run();
        assert!(matches!(result, SearchResult::Infeasible));
        assert!(stats.c2_conflicts > 0, "C2 must fire: {stats}");
        assert_eq!(stats.leaves, 0, "no leaf should be reached: {stats}");
    }

    /// Orientation conflict: a precedence arc against a forced time order.
    /// a -> b by arc, but b must finish before a can even start because a
    /// depends on c and c depends on b... i.e. a cycle through closure would
    /// be caught at build; instead force the conflict geometrically: a -> b
    /// with horizon = both durations, and b also -> a via a middle task is
    /// impossible to build. Use instead: a -> b, horizon exactly a+b, chip
    /// fits one at a time; check the *feasible* order honors the arc.
    #[test]
    fn precedence_orientation_survives_to_the_leaf() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(4)
            .task(Task::new("late", 2, 2, 2))
            .task(Task::new("early", 2, 2, 2))
            .precedence("early", "late")
            .build()
            .expect("valid");
        let config = SolverConfig {
            use_heuristics: false,
            ..SolverConfig::default()
        };
        let (result, _) = Search::new(&i, &config).run();
        match result {
            SearchResult::Feasible(p) => {
                // "early" (id 1) strictly precedes "late" (id 0).
                assert!(p.task_box(1).end(Dim::Time) <= p.task_box(0).start(Dim::Time));
            }
            _ => panic!("chain fits exactly"),
        }
    }

    /// The C4 chord scan visits each *symmetric-role* chord pair once
    /// (`x > w`) instead of twice; its forcing and conflict behavior must
    /// be identical to the historical double enumeration. This pins exact
    /// node, fix, and cascade-event counts on two infeasible instances
    /// where the rule is load-bearing — disabling it provably changes the
    /// tree — so a dedup bug (a missed or doubled forcing) moves a pinned
    /// number.
    #[test]
    fn c4_dedup_preserves_forcing_behavior() {
        let build = |chip: u64, horizon: u64, sides: &[(u64, u64, u64)]| {
            let mut b = Instance::builder()
                .chip(Chip::square(chip))
                .horizon(horizon);
            for (k, (w, h, d)) in sides.iter().enumerate() {
                b = b.task(Task::new(format!("t{k}"), *w, *h, *d));
            }
            b.build().expect("valid")
        };
        let on = SolverConfig {
            use_bounds: false,
            use_heuristics: false,
            ..SolverConfig::default()
        };
        let off = SolverConfig {
            c4_rule: false,
            ..on.clone()
        };
        let mixed: &[(u64, u64, u64)] = &[
            (3, 2, 3),
            (2, 3, 3),
            (3, 2, 2),
            (2, 3, 2),
            (2, 2, 3),
            (3, 3, 1),
        ];
        let cubes: &[(u64, u64, u64)] = &[(2, 2, 3); 5];
        for (instance, want_nodes, want_fixes, want_events, nodes_without_c4) in [
            (build(5, 3, mixed), 64, 194, 192, 98),
            (build(4, 4, cubes), 209, 615, 604, 265),
        ] {
            let (result, stats) = Search::new(&instance, &on).run();
            assert!(matches!(result, SearchResult::Infeasible));
            assert_eq!(stats.nodes, want_nodes);
            assert_eq!(stats.propagated_fixes, want_fixes);
            assert_eq!(stats.propagation_events, want_events);
            // The rule must actually act here, or the pin proves nothing.
            let (off_result, off_stats) = Search::new(&instance, &off).run();
            assert!(matches!(off_result, SearchResult::Infeasible));
            assert_eq!(off_stats.nodes, nodes_without_c4);
            assert_ne!(stats.nodes, off_stats.nodes, "C4 must prune this tree");
        }
    }

    /// The C4 rule must not change answers (spot check mirroring the
    /// proptest in tests/pipeline_invariants.rs with a crafted shape that
    /// actually contains potential induced 4-cycles).
    #[test]
    fn c4_rule_preserves_answers_on_a_grid_of_dominoes() {
        // Four 1x2 dominoes on a 2x2 chip, horizon 2: exactly two fit at a
        // time lying flat; answer must be identical with the rule on or off.
        let build = |horizon| {
            Instance::builder()
                .chip(Chip::square(2))
                .horizon(horizon)
                .tasks((0..4).map(|k| Task::new(format!("d{k}"), 2, 1, 1)))
                .build()
                .expect("valid")
        };
        for horizon in [1u64, 2, 3] {
            let i = build(horizon);
            let on = SolverConfig {
                use_bounds: false,
                use_heuristics: false,
                ..SolverConfig::default()
            };
            let off = SolverConfig {
                c4_rule: false,
                ..on.clone()
            };
            let a = matches!(Search::new(&i, &on).run().0, SearchResult::Feasible(_));
            let b = matches!(Search::new(&i, &off).run().0, SearchResult::Feasible(_));
            assert_eq!(a, b, "horizon {horizon}");
            assert_eq!(a, horizon >= 2, "two dominoes per cycle");
        }
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use recopack_model::{Chip, Task};

    fn grid(task_count: usize, chip: u64, horizon: u64) -> Instance {
        let mut b = Instance::builder()
            .chip(Chip::square(chip))
            .horizon(horizon);
        b = b.tasks((0..task_count).map(|k| Task::new(format!("t{k}"), 2, 2, 2)));
        b.build().expect("valid")
    }

    fn config_with_threads(threads: usize) -> SolverConfig {
        SolverConfig {
            use_bounds: false,
            use_heuristics: false,
            threads,
            ..SolverConfig::default()
        }
    }

    /// The parallel verdict and certificate must equal the sequential ones —
    /// feasible case.
    #[test]
    fn parallel_matches_sequential_feasible() {
        let i = grid(5, 4, 8);
        let seq = config_with_threads(1);
        let (r1, _) = Search::new(&i, &seq).run();
        let SearchResult::Feasible(p1) = r1 else {
            panic!("sequentially feasible");
        };
        for threads in [2, 3, 8] {
            let par = config_with_threads(threads);
            let (r, stats) = Search::new(&i, &par).run();
            let SearchResult::Feasible(p) = r else {
                panic!("{threads} threads must agree on feasibility");
            };
            assert_eq!(p, p1, "certificate differs at {threads} threads");
            assert_eq!(p.verify(&i), Ok(()));
            assert!(stats.nodes > 0);
        }
    }

    /// Infeasible case: every subtree is exhausted, so the whole tree is —
    /// and the aggregated statistics cover real work. The bare config keeps
    /// root propagation from refuting the instance before the fan-out.
    #[test]
    fn parallel_matches_sequential_infeasible() {
        let i = grid(4, 2, 7);
        for threads in [2, 8] {
            let par = SolverConfig {
                threads,
                ..SolverConfig::bare()
            };
            let (r, stats) = Search::new(&i, &par).run();
            assert!(
                matches!(r, SearchResult::Infeasible),
                "{threads} threads must prove infeasibility"
            );
            assert!(stats.nodes > 0, "a real tree was searched");
        }
    }

    /// The node limit is a *global* budget: many threads must not multiply
    /// it.
    #[test]
    fn parallel_node_limit_is_global() {
        let i = grid(6, 4, 9);
        let config = SolverConfig {
            node_limit: Some(40),
            ..config_with_threads(4)
        };
        let (r, stats) = Search::new(&i, &config).run();
        assert!(matches!(r, SearchResult::Limit(LimitKind::Nodes)));
        // Each thread checks after charging the shared counter, so the
        // overshoot is bounded by the thread count, not multiplied by it.
        assert!(
            stats.nodes <= 40 + 8,
            "global budget overshoot: {} nodes",
            stats.nodes
        );
    }

    /// A zero time limit must stop the parallel search, and report the
    /// right cause.
    #[test]
    fn parallel_time_limit_reports_time() {
        let i = grid(7, 6, 10);
        let config = SolverConfig {
            time_limit: Some(std::time::Duration::ZERO),
            ..config_with_threads(4)
        };
        let (r, _) = Search::new(&i, &config).run();
        assert!(matches!(r, SearchResult::Limit(LimitKind::Time)));
    }

    /// Split knobs, including degenerate ones, never change the answer:
    /// threshold 1 splits at every opportunity (maximum stealing),
    /// `u64::MAX` never splits (the root unit is searched alone), and a
    /// nonzero backlog queues speculative units.
    #[test]
    fn split_knobs_are_answer_invariant() {
        let feasible = grid(5, 4, 8);
        let infeasible = grid(4, 2, 7);
        let (seq, _) = Search::new(&feasible, &config_with_threads(1)).run();
        let SearchResult::Feasible(expected) = seq else {
            panic!("sequentially feasible");
        };
        for split_after_nodes in [1, 2, 5, 64, u64::MAX] {
            for split_backlog in [0, 2] {
                let config = SolverConfig {
                    split_after_nodes,
                    split_backlog,
                    ..config_with_threads(3)
                };
                let (r, _) = Search::new(&feasible, &config).run();
                let SearchResult::Feasible(p) = r else {
                    panic!("threshold {split_after_nodes}: must stay feasible");
                };
                assert_eq!(
                    p, expected,
                    "threshold {split_after_nodes}, backlog {split_backlog}: certificate"
                );
                assert!(
                    matches!(
                        Search::new(&infeasible, &config).run().0,
                        SearchResult::Infeasible
                    ),
                    "threshold {split_after_nodes}, backlog {split_backlog}"
                );
            }
        }
    }

    /// Tiny instances whose whole tree stays below the split threshold:
    /// the root unit decides everything itself and the incumbent path
    /// delivers the certificate.
    #[test]
    fn small_trees_answer_without_splitting() {
        let pair = Instance::builder()
            .chip(Chip::square(2))
            .horizon(4)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .precedence("a", "b")
            .build()
            .expect("valid");
        let (r, _) = Search::new(&pair, &config_with_threads(4)).run();
        let SearchResult::Feasible(p) = r else {
            panic!("pair is feasible");
        };
        assert_eq!(p.verify(&pair), Ok(()));
    }

    /// A cancellation token flipped before the parallel search starts must
    /// surface as `Limit(Cancelled)` — every unit aborts, nothing is
    /// feasible, and [`Search::finalize`] maps the recorded stop to the
    /// cause. This pins the documented cancellation semantics.
    #[test]
    fn parallel_pre_cancelled_token_reports_cancelled() {
        let i = grid(6, 4, 9);
        let config = SolverConfig {
            split_after_nodes: 1,
            ..config_with_threads(4)
        };
        config.cancel.cancel();
        let (r, _) = Search::new(&i, &config).run();
        assert!(matches!(r, SearchResult::Limit(LimitKind::Cancelled)));
    }

    /// Mid-search cancellation under forced stealing: on an infeasible
    /// instance the verdict is the `Cancelled` limit — or, if the host is
    /// fast enough to exhaust the tree before the token flips, the honest
    /// `Infeasible`. It is never a feasible answer and never a different
    /// limit kind.
    #[test]
    fn parallel_mid_search_cancellation_is_a_limit() {
        use crate::config::CancelToken;
        // Infeasible with a deep tree: seven 2x2x2 tasks, 4x4 chip,
        // horizon 3 (volume 56 > 48).
        let i = grid(7, 4, 3);
        for threads in [2, 4, 8] {
            let token = CancelToken::new();
            let config = SolverConfig {
                split_after_nodes: 1,
                cancel: token.clone(),
                ..config_with_threads(threads)
            };
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    token.cancel();
                });
                let (r, _) = Search::new(&i, &config).run();
                assert!(
                    matches!(
                        r,
                        SearchResult::Limit(LimitKind::Cancelled) | SearchResult::Infeasible
                    ),
                    "{threads} threads: cancellation must end in a limit or exhaustion"
                );
            });
        }
    }
}
