//! The exact packing-class solver for FPGA module placement with temporal
//! precedence constraints.
//!
//! This crate implements the algorithm of Fekete, Köhler & Teich (DATE
//! 2001). Instead of enumerating geometric positions, the search assigns a
//! three-valued *state* to every (task pair, dimension): **component**
//! (projections overlap), **comparability** (projections disjoint), or
//! undecided — plus an *orientation* for comparability edges of the time
//! dimension ("u entirely before v"). Constraint propagation closes each
//! decision under:
//!
//! * **C3** — no pair may overlap in all three dimensions;
//! * **C2** — every clique of fixed comparability edges (= chain of disjoint
//!   projections) must fit the container in that dimension, checked by exact
//!   maximum-weight clique;
//! * **C1 (partial)** — induced 4-cycles of component edges with fixed
//!   comparability chords are forbidden in interval graphs;
//! * **D1/D2** — the paper's path and transitivity implications, which
//!   cascade precedence orientations through the time dimension.
//!
//! Leaves are accepted *constructively*: each dimension's comparability
//! graph is transitively oriented (extending the precedence order in time),
//! coordinates are laid out by longest weighted chains, and the resulting
//! [`Placement`](recopack_model::Placement) is verified geometrically.
//! A "feasible" answer therefore always carries a checked certificate.
//!
//! Solvers:
//!
//! * [`Opp`] — feasibility for a fixed container (paper: FeasAT&FindS);
//! * [`Bmp`] — minimal square chip for a fixed deadline (MinA&FindS);
//! * [`Spp`] — minimal makespan for a fixed chip (MinT&FindS);
//! * [`FixedSchedule`] — spatial feasibility / minimal chip when start times
//!   are already given (FeasA&FixedS, MinA&FixedS);
//! * [`pareto_front`] — all Pareto-optimal (chip side, makespan) pairs
//!   (paper Fig. 7).
//!
//! # Example
//!
//! ```
//! use recopack_core::{Bmp, SolverConfig};
//! use recopack_model::{benchmarks, Chip};
//!
//! // Table 1, row T = 14: the smallest square chip is 16x16.
//! let instance = benchmarks::de(Chip::square(1), 14).with_transitive_closure();
//! let result = Bmp::new(&instance).solve().expect("feasible for some chip");
//! assert_eq!(result.side, 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beacon;
mod bmp;
mod config;
mod fixeds;
mod opp;
mod pareto;
mod search;
mod spp;
mod state;
pub mod telemetry;

pub use beacon::{Profile, Sampler, DEFAULT_HZ as SAMPLER_DEFAULT_HZ};
pub use bmp::{Bmp, BmpResult};
pub use config::{CancelToken, LimitKind, SolverConfig, SolverStats};
pub use fixeds::FixedSchedule;
pub use opp::{InfeasibilityProof, Opp, SolveOutcome};
pub use pareto::{pareto_front, pareto_front_with_stats, ParetoPoint};
pub use spp::{Spp, SppResult};
pub use telemetry::{
    per_second, EventKind, EventTotals, Fanout, FileJournal, MemoryJournal, ProgressCounters,
    PruneRule, SearchEvent, SolveReport, Telemetry, TelemetrySink, TELEMETRY_SCHEMA_VERSION,
};
