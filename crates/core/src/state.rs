//! The searched object: three-valued edge states plus orientations, with a
//! trail for O(1) backtracking.
//!
//! Beyond the tri-state table and the materialized component/comparability
//! graphs, the state incrementally maintains the *oriented arc digraph* of
//! every dimension: insertion-ordered arc lists, out-/in-neighbor bitsets,
//! and vertex-weighted longest-path labels (`dist[v]` = weight of the
//! heaviest oriented chain ending at `v`, counting `v` itself). Each
//! [`PackingState::orient_arc`] call updates these in O(affected) and logs
//! every change on the trail, so [`PackingState::rollback`] restores them
//! exactly — this is what lets the search answer "does any oriented chain
//! exceed the capacity?" in O(1) instead of recomputing a longest path from
//! scratch per propagation event (see DESIGN.md, "Incremental propagation").

use recopack_graph::{BitSet, DenseGraph, PairIndex};

/// State of one (task pair, dimension) slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeState {
    /// Not yet decided.
    Unassigned,
    /// Component edge: the projections overlap in this dimension.
    Component,
    /// Comparability edge: the projections are disjoint in this dimension.
    Comparability,
}

/// Orientation of a comparability edge, relative to the pair's `(lo, hi)`
/// vertex order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orient {
    /// Not yet oriented.
    None,
    /// `lo` comes entirely before `hi`.
    Forward,
    /// `hi` comes entirely before `lo`.
    Backward,
}

#[derive(Clone)]
enum TrailEntry {
    State {
        dim: usize,
        pair: usize,
    },
    /// An orientation plus its arc-digraph side effects: the arc itself is
    /// popped from `arc_list` and the adjacency bitsets (the arc is always
    /// the most recent entry when this unwinds — trail and arc list are
    /// both LIFO), `closed_cycle` undoes the cycle counter.
    Orient {
        dim: usize,
        pair: usize,
        closed_cycle: bool,
    },
    /// A longest-path label overwritten during a relaxation cascade.
    Dist {
        dim: usize,
        vertex: usize,
        old: u64,
    },
    /// The running per-dimension maximum overwritten during a cascade.
    MaxDist {
        dim: usize,
        old: u64,
    },
}

/// The packing-class search state over `n` tasks.
///
/// Keeps, per dimension, the tri-state of every pair, the orientation of
/// comparability edges (only the time dimension orients in this paper, but
/// the structure is dimension-uniform as §4 notes), and materialized
/// [`DenseGraph`]s of the *fixed* component and comparability edges so that
/// propagation rules can run graph queries directly. A trail records every
/// mutation for exact rollback.
///
/// The state is `Clone` so that the parallel search can hand each stolen
/// work unit an independent copy (the clone carries the trail, so rollbacks
/// to marks taken before cloning behave identically in the copy).
#[derive(Clone)]
pub struct PackingState {
    n: usize,
    idx: PairIndex,
    states: [Vec<EdgeState>; 3],
    orients: [Vec<Orient>; 3],
    component: [DenseGraph; 3],
    comparability: [DenseGraph; 3],
    unassigned: usize,
    trail: Vec<TrailEntry>,
    /// Per-dimension vertex weights for the longest-path labels (task
    /// extents in space dimensions, durations in time). All zeros under
    /// [`PackingState::new`].
    sizes: [Vec<u64>; 3],
    /// Oriented arcs per dimension, in insertion order (`(u, v)` = "u
    /// before v"). Grows/shrinks in lockstep with the trail.
    arc_list: [Vec<(usize, usize)>; 3],
    /// Out-neighbors of each vertex in the oriented arc digraph.
    out: [Vec<BitSet>; 3],
    /// In-neighbors of each vertex in the oriented arc digraph.
    inn: [Vec<BitSet>; 3],
    /// `dist[d][v]`: weight of the heaviest oriented chain ending at `v`
    /// (counting `v`). Frozen while the digraph is cyclic.
    dist: [Vec<u64>; 3],
    /// Running maximum of `dist[d]`.
    max_dist: [u64; 3],
    /// Number of trail-live arcs that closed a cycle at insertion; the
    /// digraph is acyclic iff this is zero.
    cycle_arcs: [usize; 3],
    /// Reusable cascade worklist (contents meaningless between calls).
    scratch_stack: Vec<usize>,
    /// Reusable visited set for the cycle check.
    scratch_visited: BitSet,
}

impl PackingState {
    /// Creates the all-unassigned state for `n` tasks with zero vertex
    /// weights (chain labels stay zero; fine for tests that only exercise
    /// edge states).
    #[cfg(test)]
    pub fn new(n: usize) -> Self {
        Self::with_sizes(n, std::array::from_fn(|_| vec![0; n]))
    }

    /// Creates the all-unassigned state with per-dimension vertex weights
    /// for the longest-path labels.
    ///
    /// # Panics
    ///
    /// Panics if any weight vector's length differs from `n`.
    pub fn with_sizes(n: usize, sizes: [Vec<u64>; 3]) -> Self {
        for s in &sizes {
            assert_eq!(s.len(), n, "one weight per task per dimension");
        }
        let idx = PairIndex::new(n);
        let m = idx.pair_count();
        let dist: [Vec<u64>; 3] = std::array::from_fn(|d| sizes[d].clone());
        let max_dist = std::array::from_fn(|d| sizes[d].iter().copied().max().unwrap_or(0));
        Self {
            n,
            idx,
            states: std::array::from_fn(|_| vec![EdgeState::Unassigned; m]),
            orients: std::array::from_fn(|_| vec![Orient::None; m]),
            component: std::array::from_fn(|_| DenseGraph::new(n)),
            comparability: std::array::from_fn(|_| DenseGraph::new(n)),
            unassigned: 3 * m,
            trail: Vec::new(),
            sizes,
            arc_list: std::array::from_fn(|_| Vec::new()),
            out: std::array::from_fn(|_| vec![BitSet::new(n); n]),
            inn: std::array::from_fn(|_| vec![BitSet::new(n); n]),
            dist,
            max_dist,
            cycle_arcs: [0; 3],
            scratch_stack: Vec::new(),
            scratch_visited: BitSet::new(n),
        }
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.n
    }

    /// The pair indexing shared with callers.
    pub fn pair_index(&self) -> PairIndex {
        self.idx
    }

    /// Number of still-unassigned (pair, dimension) slots.
    pub fn unassigned_count(&self) -> usize {
        self.unassigned
    }

    /// State of a pair in a dimension.
    pub fn state(&self, dim: usize, pair: usize) -> EdgeState {
        self.states[dim][pair]
    }

    /// Orientation of a pair in a dimension.
    pub fn orient(&self, dim: usize, pair: usize) -> Orient {
        self.orients[dim][pair]
    }

    /// Whether the arc `u → v` ("u before v") is fixed in `dim`.
    pub fn has_arc(&self, dim: usize, u: usize, v: usize) -> bool {
        let o = self.orients[dim][self.idx.index(u, v)];
        (u < v && o == Orient::Forward) || (u > v && o == Orient::Backward)
    }

    /// The graph of fixed component edges in `dim`.
    pub fn component_graph(&self, dim: usize) -> &DenseGraph {
        &self.component[dim]
    }

    /// The graph of fixed comparability edges in `dim`.
    pub fn comparability_graph(&self, dim: usize) -> &DenseGraph {
        &self.comparability[dim]
    }

    /// Out-neighbors of `v` in the oriented arc digraph of `dim`.
    pub fn out_neighbors(&self, dim: usize, v: usize) -> &BitSet {
        &self.out[dim][v]
    }

    /// In-neighbors of `v` in the oriented arc digraph of `dim`.
    pub fn in_neighbors(&self, dim: usize, v: usize) -> &BitSet {
        &self.inn[dim][v]
    }

    /// Weight of the heaviest oriented chain ending at `v` in `dim`
    /// (counting `v` itself). Only meaningful while [`Self::has_cycle`] is
    /// false: labels freeze while the digraph is cyclic.
    #[cfg(test)]
    pub fn longest_path_end(&self, dim: usize, v: usize) -> u64 {
        self.dist[dim][v]
    }

    /// Weight of the heaviest oriented chain in `dim` (the maximum over all
    /// per-vertex chain-end labels). Only meaningful while
    /// [`Self::has_cycle`] is false: labels freeze while the digraph is
    /// cyclic.
    pub fn max_longest_path(&self, dim: usize) -> u64 {
        self.max_dist[dim]
    }

    /// Whether the oriented arc digraph of `dim` currently has a cycle.
    pub fn has_cycle(&self, dim: usize) -> bool {
        self.cycle_arcs[dim] > 0
    }

    /// The vertex weight of `v` in `dim` (as passed to
    /// [`Self::with_sizes`]; zero under `new`).
    #[cfg(test)]
    pub fn vertex_weight(&self, dim: usize, v: usize) -> u64 {
        self.sizes[dim][v]
    }

    /// Sets an unassigned slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already assigned or `state` is `Unassigned` —
    /// propagation must check before overwriting.
    pub fn assign(&mut self, dim: usize, pair: usize, state: EdgeState) {
        assert_eq!(
            self.states[dim][pair],
            EdgeState::Unassigned,
            "slot (dim {dim}, pair {pair}) already assigned"
        );
        assert_ne!(state, EdgeState::Unassigned, "cannot assign Unassigned");
        self.states[dim][pair] = state;
        self.unassigned -= 1;
        let (u, v) = self.idx.pair(pair);
        match state {
            EdgeState::Component => {
                self.component[dim].add_edge(u, v);
            }
            EdgeState::Comparability => {
                self.comparability[dim].add_edge(u, v);
            }
            EdgeState::Unassigned => unreachable!(),
        }
        self.trail.push(TrailEntry::State { dim, pair });
    }

    /// Orients an unoriented slot (`u → v`); the slot must be a fixed
    /// comparability edge.
    ///
    /// Also maintains the arc digraph incrementally: appends to the arc
    /// list and adjacency bitsets, detects whether the arc closes a cycle,
    /// and — while the digraph stays acyclic — relaxes the longest-path
    /// labels along the affected descendants only, logging every overwrite
    /// on the trail. Labels freeze while a cycle exists; that is sound
    /// because the search treats a cyclic digraph as an immediate conflict
    /// and rolls the cascade back wholesale.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a comparability edge or already oriented.
    pub fn orient_arc(&mut self, dim: usize, u: usize, v: usize) {
        let pair = self.idx.index(u, v);
        assert_eq!(
            self.states[dim][pair],
            EdgeState::Comparability,
            "only comparability edges carry orientations"
        );
        assert_eq!(self.orients[dim][pair], Orient::None, "already oriented");
        self.orients[dim][pair] = if u < v {
            Orient::Forward
        } else {
            Orient::Backward
        };
        // A cycle through the new arc u→v exists iff v already reached u.
        // While a cycle is live the labels are frozen, so the (possibly
        // expensive) reachability probe is skipped too.
        let closed_cycle = self.cycle_arcs[dim] == 0 && self.reaches(dim, v, u);
        self.arc_list[dim].push((u, v));
        self.out[dim][u].insert(v);
        self.inn[dim][v].insert(u);
        self.trail.push(TrailEntry::Orient {
            dim,
            pair,
            closed_cycle,
        });
        if closed_cycle {
            self.cycle_arcs[dim] += 1;
        } else if self.cycle_arcs[dim] == 0 {
            self.relax_from(dim, u, v);
        }
    }

    /// Whether `from` reaches `to` in the arc digraph of `dim` (depth-first
    /// over the out-neighbor bitsets; reuses scratch buffers).
    fn reaches(&mut self, dim: usize, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut stack = std::mem::take(&mut self.scratch_stack);
        stack.clear();
        self.scratch_visited.clear();
        self.scratch_visited.insert(from);
        stack.push(from);
        let mut found = false;
        while let Some(w) = stack.pop() {
            if self.out[dim][w].contains(to) {
                found = true;
                break;
            }
            // Fused sweep of out[w] \ visited: the kernel skips
            // already-visited vertices inside the word ops instead of
            // yielding them for a per-element membership test — rows
            // overlap heavily once the BFS frontier grows. Newly visited
            // vertices land below the advancing cursor, so the difference
            // never yields one twice.
            let row = &self.out[dim][w];
            let mut next = 0;
            while let Some(x) = row.and_not_next(&self.scratch_visited, next) {
                next = x + 1;
                self.scratch_visited.insert(x);
                stack.push(x);
            }
        }
        self.scratch_stack = stack;
        found
    }

    /// Relaxes longest-path labels after inserting the arc `u → v` into an
    /// acyclic digraph: only vertices whose label actually grows are
    /// visited, and every overwrite is trail-logged.
    fn relax_from(&mut self, dim: usize, u: usize, v: usize) {
        let candidate = self.dist[dim][u] + self.sizes[dim][v];
        if candidate <= self.dist[dim][v] {
            return;
        }
        let mut stack = std::mem::take(&mut self.scratch_stack);
        stack.clear();
        self.bump_dist(dim, v, candidate);
        stack.push(v);
        while let Some(w) = stack.pop() {
            let base = self.dist[dim][w];
            let mut x_from = 0;
            while let Some(x) = self.out[dim][w].next_at_or_after(x_from) {
                x_from = x + 1;
                let candidate = base + self.sizes[dim][x];
                if candidate > self.dist[dim][x] {
                    self.bump_dist(dim, x, candidate);
                    stack.push(x);
                }
            }
        }
        self.scratch_stack = stack;
    }

    /// Raises `dist[dim][v]` to `new` (trail-logged), maintaining the
    /// running maximum.
    fn bump_dist(&mut self, dim: usize, v: usize, new: u64) {
        self.trail.push(TrailEntry::Dist {
            dim,
            vertex: v,
            old: self.dist[dim][v],
        });
        self.dist[dim][v] = new;
        if new > self.max_dist[dim] {
            self.trail.push(TrailEntry::MaxDist {
                dim,
                old: self.max_dist[dim],
            });
            self.max_dist[dim] = new;
        }
    }

    /// A rollback point capturing the current trail length.
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Undoes every mutation after `mark`.
    pub fn rollback(&mut self, mark: usize) {
        while self.trail.len() > mark {
            match self.trail.pop().expect("trail length checked") {
                TrailEntry::State { dim, pair } => {
                    let (u, v) = self.idx.pair(pair);
                    match self.states[dim][pair] {
                        EdgeState::Component => {
                            self.component[dim].remove_edge(u, v);
                        }
                        EdgeState::Comparability => {
                            self.comparability[dim].remove_edge(u, v);
                        }
                        EdgeState::Unassigned => unreachable!("trail records assignments"),
                    }
                    self.states[dim][pair] = EdgeState::Unassigned;
                    self.unassigned += 1;
                }
                TrailEntry::Orient {
                    dim,
                    pair,
                    closed_cycle,
                } => {
                    self.orients[dim][pair] = Orient::None;
                    let (u, v) = self.arc_list[dim]
                        .pop()
                        .expect("arc list and trail are in lockstep");
                    debug_assert_eq!(self.idx.index(u, v), pair);
                    self.out[dim][u].remove(v);
                    self.inn[dim][v].remove(u);
                    if closed_cycle {
                        self.cycle_arcs[dim] -= 1;
                    }
                }
                TrailEntry::Dist { dim, vertex, old } => {
                    self.dist[dim][vertex] = old;
                }
                TrailEntry::MaxDist { dim, old } => {
                    self.max_dist[dim] = old;
                }
            }
        }
    }

    /// All arcs fixed in `dim`, as `(u, v)` = "u before v", in insertion
    /// order (maintained incrementally — no pair scan).
    pub fn arcs(&self, dim: usize) -> &[(usize, usize)] {
        &self.arc_list[dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_updates_graphs_and_counts() {
        let mut s = PackingState::new(3);
        assert_eq!(s.unassigned_count(), 9);
        let p = s.pair_index().index(0, 1);
        s.assign(2, p, EdgeState::Comparability);
        assert_eq!(s.state(2, p), EdgeState::Comparability);
        assert!(s.comparability_graph(2).has_edge(0, 1));
        assert!(!s.component_graph(2).has_edge(0, 1));
        assert_eq!(s.unassigned_count(), 8);
    }

    #[test]
    fn rollback_restores_everything() {
        let mut s = PackingState::new(3);
        let p01 = s.pair_index().index(0, 1);
        let p02 = s.pair_index().index(0, 2);
        s.assign(0, p01, EdgeState::Component);
        let mark = s.mark();
        s.assign(2, p02, EdgeState::Comparability);
        s.orient_arc(2, 2, 0);
        assert!(s.has_arc(2, 2, 0));
        s.rollback(mark);
        assert_eq!(s.state(2, p02), EdgeState::Unassigned);
        assert_eq!(s.orient(2, p02), Orient::None);
        assert!(!s.comparability_graph(2).has_edge(0, 2));
        // the earlier assignment survives
        assert_eq!(s.state(0, p01), EdgeState::Component);
        assert_eq!(s.unassigned_count(), 8);
    }

    #[test]
    fn arcs_reports_directions() {
        let mut s = PackingState::new(3);
        let p01 = s.pair_index().index(0, 1);
        let p12 = s.pair_index().index(1, 2);
        s.assign(2, p01, EdgeState::Comparability);
        s.orient_arc(2, 1, 0);
        s.assign(2, p12, EdgeState::Comparability);
        s.orient_arc(2, 1, 2);
        let mut arcs = s.arcs(2).to_vec();
        arcs.sort_unstable();
        assert_eq!(arcs, vec![(1, 0), (1, 2)]);
        assert!(s.has_arc(2, 1, 0));
        assert!(!s.has_arc(2, 0, 1));
        assert!(s.out_neighbors(2, 1).contains(0));
        assert!(s.out_neighbors(2, 1).contains(2));
        assert!(s.in_neighbors(2, 0).contains(1));
    }

    #[test]
    fn chain_labels_track_orientations_and_rollback() {
        let sizes: [Vec<u64>; 3] = [vec![0; 3], vec![0; 3], vec![5, 2, 4]];
        let mut s = PackingState::with_sizes(3, sizes);
        assert_eq!(s.max_longest_path(2), 5);
        let p01 = s.pair_index().index(0, 1);
        let p12 = s.pair_index().index(1, 2);
        s.assign(2, p01, EdgeState::Comparability);
        s.assign(2, p12, EdgeState::Comparability);
        let mark = s.mark();
        s.orient_arc(2, 0, 1); // chain 0→1: 5 + 2
        assert_eq!(s.longest_path_end(2, 1), 7);
        assert_eq!(s.max_longest_path(2), 7);
        s.orient_arc(2, 1, 2); // chain 0→1→2: 5 + 2 + 4
        assert_eq!(s.longest_path_end(2, 2), 11);
        assert_eq!(s.max_longest_path(2), 11);
        assert!(!s.has_cycle(2));
        s.rollback(mark);
        assert_eq!(s.longest_path_end(2, 1), 2);
        assert_eq!(s.longest_path_end(2, 2), 4);
        assert_eq!(s.max_longest_path(2), 5);
        assert!(s.arcs(2).is_empty());
        assert!(s.out_neighbors(2, 0).is_empty());
    }

    #[test]
    fn cycles_are_detected_and_unwound() {
        let sizes: [Vec<u64>; 3] = [vec![0; 3], vec![0; 3], vec![1, 1, 1]];
        let mut s = PackingState::with_sizes(3, sizes);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            let p = s.pair_index().index(a, b);
            s.assign(2, p, EdgeState::Comparability);
        }
        s.orient_arc(2, 0, 1);
        s.orient_arc(2, 1, 2);
        let mark = s.mark();
        s.orient_arc(2, 2, 0); // closes 0→1→2→0
        assert!(s.has_cycle(2));
        s.rollback(mark);
        assert!(!s.has_cycle(2));
        assert_eq!(s.max_longest_path(2), 3);
        assert_eq!(s.arcs(2), &[(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn double_assign_panics() {
        let mut s = PackingState::new(2);
        s.assign(0, 0, EdgeState::Component);
        s.assign(0, 0, EdgeState::Component);
    }

    #[test]
    #[should_panic(expected = "only comparability edges")]
    fn orienting_component_edge_panics() {
        let mut s = PackingState::new(2);
        s.assign(2, 0, EdgeState::Component);
        s.orient_arc(2, 0, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random interleavings of assignments, orientations, and rollbacks must
    /// keep the materialized graphs consistent with the state table.
    fn consistent(s: &PackingState) -> bool {
        let idx = s.pair_index();
        for d in 0..3 {
            for (p, u, v) in idx.iter() {
                let in_component = s.component_graph(d).has_edge(u, v);
                let in_comparability = s.comparability_graph(d).has_edge(u, v);
                let expected = match s.state(d, p) {
                    EdgeState::Unassigned => !in_component && !in_comparability,
                    EdgeState::Component => in_component && !in_comparability,
                    EdgeState::Comparability => !in_component && in_comparability,
                };
                if !expected {
                    return false;
                }
                if s.orient(d, p) != Orient::None && s.state(d, p) != EdgeState::Comparability {
                    return false;
                }
            }
        }
        arcs_consistent(s)
    }

    /// The incrementally maintained arc digraph — arc lists, out-/in-
    /// neighbor bitsets, cycle flag, and longest-path labels — must always
    /// equal a from-scratch recomputation over the orientation table.
    fn arcs_consistent(s: &PackingState) -> bool {
        let idx = s.pair_index();
        let n = s.task_count();
        for d in 0..3 {
            // Arcs implied by the orientation table.
            let mut expected: Vec<(usize, usize)> = Vec::new();
            for (p, u, v) in idx.iter() {
                match s.orient(d, p) {
                    Orient::Forward => expected.push((u, v)),
                    Orient::Backward => expected.push((v, u)),
                    Orient::None => {}
                }
            }
            let mut maintained = s.arcs(d).to_vec();
            maintained.sort_unstable();
            expected.sort_unstable();
            if maintained != expected {
                return false;
            }
            // Adjacency bitsets row by row.
            for u in 0..n {
                for v in 0..n {
                    let has = expected.contains(&(u, v));
                    if s.out_neighbors(d, u).contains(v) != has
                        || s.in_neighbors(d, v).contains(u) != has
                    {
                        return false;
                    }
                }
            }
            // Cycle flag and (when acyclic) longest-path labels, against a
            // naive fixpoint recomputation.
            match scratch_longest_paths(d, s, &expected) {
                None => {
                    if !s.has_cycle(d) {
                        return false;
                    }
                }
                Some(dist) => {
                    if s.has_cycle(d) {
                        return false;
                    }
                    let max = dist.iter().copied().max().unwrap_or(0);
                    if s.max_longest_path(d) != max {
                        return false;
                    }
                    for (v, &want) in dist.iter().enumerate() {
                        if s.longest_path_end(d, v) != want {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Naive vertex-weighted longest path per end vertex; `None` if the arc
    /// set is cyclic. Bellman-Ford-style: at most `n` rounds of relaxation
    /// can change anything in a DAG, so an `n`-th-round change is a cycle.
    fn scratch_longest_paths(
        d: usize,
        s: &PackingState,
        arcs: &[(usize, usize)],
    ) -> Option<Vec<u64>> {
        let n = s.task_count();
        let size = |v: usize| s.vertex_weight(d, v);
        let mut dist: Vec<u64> = (0..n).map(size).collect();
        for round in 0..=n {
            let mut changed = false;
            for &(u, v) in arcs {
                let candidate = dist[u] + size(v);
                if candidate > dist[v] {
                    dist[v] = candidate;
                    changed = true;
                }
            }
            if !changed {
                return Some(dist);
            }
            if round == n {
                return None;
            }
        }
        Some(dist)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_trail_replay_is_consistent(ops in proptest::collection::vec((0usize..3, 0usize..6, 0usize..6), 1..60)) {
            let n = 4;
            // Distinct, nonzero weights so label errors cannot hide.
            let sizes: [Vec<u64>; 3] =
                std::array::from_fn(|d| (0..n).map(|v| (d * n + v + 1) as u64).collect());
            let mut s = PackingState::with_sizes(n, sizes);
            let mut marks: Vec<usize> = Vec::new();
            for (d, p, action) in ops {
                let p = p % s.pair_index().pair_count();
                match action {
                    0 if s.state(d, p) == EdgeState::Unassigned => {
                        s.assign(d, p, EdgeState::Component);
                    }
                    1 if s.state(d, p) == EdgeState::Unassigned => {
                        s.assign(d, p, EdgeState::Comparability);
                    }
                    2 => marks.push(s.mark()),
                    3 => {
                        if let Some(m) = marks.pop() {
                            s.rollback(m);
                        }
                    }
                    4 | 5 if s.state(d, p) == EdgeState::Comparability
                        && s.orient(d, p) == Orient::None =>
                    {
                        let (u, v) = s.pair_index().pair(p);
                        if action == 4 {
                            s.orient_arc(d, u, v);
                        } else {
                            s.orient_arc(d, v, u);
                        }
                    }
                    _ => {}
                }
                prop_assert!(consistent(&s), "inconsistent after op ({d}, {p}, {action})");
            }
            // Rolling everything back restores the pristine state.
            s.rollback(0);
            prop_assert!(consistent(&s));
            prop_assert_eq!(s.unassigned_count(), 3 * s.pair_index().pair_count());
            for d in 0..3 {
                prop_assert!(s.arcs(d).is_empty());
                prop_assert!(!s.has_cycle(d));
            }
        }
    }
}
