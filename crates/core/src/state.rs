//! The searched object: three-valued edge states plus orientations, with a
//! trail for O(1) backtracking.

use recopack_graph::{DenseGraph, PairIndex};

/// State of one (task pair, dimension) slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeState {
    /// Not yet decided.
    Unassigned,
    /// Component edge: the projections overlap in this dimension.
    Component,
    /// Comparability edge: the projections are disjoint in this dimension.
    Comparability,
}

/// Orientation of a comparability edge, relative to the pair's `(lo, hi)`
/// vertex order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orient {
    /// Not yet oriented.
    None,
    /// `lo` comes entirely before `hi`.
    Forward,
    /// `hi` comes entirely before `lo`.
    Backward,
}

#[derive(Clone)]
enum TrailEntry {
    State { dim: usize, pair: usize },
    Orient { dim: usize, pair: usize },
}

/// The packing-class search state over `n` tasks.
///
/// Keeps, per dimension, the tri-state of every pair, the orientation of
/// comparability edges (only the time dimension orients in this paper, but
/// the structure is dimension-uniform as §4 notes), and materialized
/// [`DenseGraph`]s of the *fixed* component and comparability edges so that
/// propagation rules can run graph queries directly. A trail records every
/// mutation for exact rollback.
///
/// The state is `Clone` so that the parallel search can hand each frontier
/// subtree an independent copy (the clone carries the trail, so rollbacks
/// to marks taken after cloning behave identically in the copy).
#[derive(Clone)]
pub struct PackingState {
    n: usize,
    idx: PairIndex,
    states: [Vec<EdgeState>; 3],
    orients: [Vec<Orient>; 3],
    component: [DenseGraph; 3],
    comparability: [DenseGraph; 3],
    unassigned: usize,
    trail: Vec<TrailEntry>,
}

impl PackingState {
    /// Creates the all-unassigned state for `n` tasks.
    pub fn new(n: usize) -> Self {
        let idx = PairIndex::new(n);
        let m = idx.pair_count();
        Self {
            n,
            idx,
            states: std::array::from_fn(|_| vec![EdgeState::Unassigned; m]),
            orients: std::array::from_fn(|_| vec![Orient::None; m]),
            component: std::array::from_fn(|_| DenseGraph::new(n)),
            comparability: std::array::from_fn(|_| DenseGraph::new(n)),
            unassigned: 3 * m,
            trail: Vec::new(),
        }
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.n
    }

    /// The pair indexing shared with callers.
    pub fn pair_index(&self) -> PairIndex {
        self.idx
    }

    /// Number of still-unassigned (pair, dimension) slots.
    pub fn unassigned_count(&self) -> usize {
        self.unassigned
    }

    /// State of a pair in a dimension.
    pub fn state(&self, dim: usize, pair: usize) -> EdgeState {
        self.states[dim][pair]
    }

    /// Orientation of a pair in a dimension.
    pub fn orient(&self, dim: usize, pair: usize) -> Orient {
        self.orients[dim][pair]
    }

    /// Whether the arc `u → v` ("u before v") is fixed in `dim`.
    pub fn has_arc(&self, dim: usize, u: usize, v: usize) -> bool {
        let o = self.orients[dim][self.idx.index(u, v)];
        (u < v && o == Orient::Forward) || (u > v && o == Orient::Backward)
    }

    /// The graph of fixed component edges in `dim`.
    pub fn component_graph(&self, dim: usize) -> &DenseGraph {
        &self.component[dim]
    }

    /// The graph of fixed comparability edges in `dim`.
    pub fn comparability_graph(&self, dim: usize) -> &DenseGraph {
        &self.comparability[dim]
    }

    /// Sets an unassigned slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already assigned or `state` is `Unassigned` —
    /// propagation must check before overwriting.
    pub fn assign(&mut self, dim: usize, pair: usize, state: EdgeState) {
        assert_eq!(
            self.states[dim][pair],
            EdgeState::Unassigned,
            "slot (dim {dim}, pair {pair}) already assigned"
        );
        assert_ne!(state, EdgeState::Unassigned, "cannot assign Unassigned");
        self.states[dim][pair] = state;
        self.unassigned -= 1;
        let (u, v) = self.idx.pair(pair);
        match state {
            EdgeState::Component => {
                self.component[dim].add_edge(u, v);
            }
            EdgeState::Comparability => {
                self.comparability[dim].add_edge(u, v);
            }
            EdgeState::Unassigned => unreachable!(),
        }
        self.trail.push(TrailEntry::State { dim, pair });
    }

    /// Orients an unoriented slot (`u → v`); the slot must be a fixed
    /// comparability edge.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a comparability edge or already oriented.
    pub fn orient_arc(&mut self, dim: usize, u: usize, v: usize) {
        let pair = self.idx.index(u, v);
        assert_eq!(
            self.states[dim][pair],
            EdgeState::Comparability,
            "only comparability edges carry orientations"
        );
        assert_eq!(self.orients[dim][pair], Orient::None, "already oriented");
        self.orients[dim][pair] = if u < v {
            Orient::Forward
        } else {
            Orient::Backward
        };
        self.trail.push(TrailEntry::Orient { dim, pair });
    }

    /// A rollback point capturing the current trail length.
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Undoes every mutation after `mark`.
    pub fn rollback(&mut self, mark: usize) {
        while self.trail.len() > mark {
            match self.trail.pop().expect("trail length checked") {
                TrailEntry::State { dim, pair } => {
                    let (u, v) = self.idx.pair(pair);
                    match self.states[dim][pair] {
                        EdgeState::Component => {
                            self.component[dim].remove_edge(u, v);
                        }
                        EdgeState::Comparability => {
                            self.comparability[dim].remove_edge(u, v);
                        }
                        EdgeState::Unassigned => unreachable!("trail records assignments"),
                    }
                    self.states[dim][pair] = EdgeState::Unassigned;
                    self.unassigned += 1;
                }
                TrailEntry::Orient { dim, pair } => {
                    self.orients[dim][pair] = Orient::None;
                }
            }
        }
    }

    /// All arcs fixed in `dim`, as `(u, v)` = "u before v".
    pub fn arcs(&self, dim: usize) -> Vec<(usize, usize)> {
        let mut arcs = Vec::new();
        for (pair, u, v) in self.idx.iter() {
            match self.orients[dim][pair] {
                Orient::Forward => arcs.push((u, v)),
                Orient::Backward => arcs.push((v, u)),
                Orient::None => {}
            }
        }
        arcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_updates_graphs_and_counts() {
        let mut s = PackingState::new(3);
        assert_eq!(s.unassigned_count(), 9);
        let p = s.pair_index().index(0, 1);
        s.assign(2, p, EdgeState::Comparability);
        assert_eq!(s.state(2, p), EdgeState::Comparability);
        assert!(s.comparability_graph(2).has_edge(0, 1));
        assert!(!s.component_graph(2).has_edge(0, 1));
        assert_eq!(s.unassigned_count(), 8);
    }

    #[test]
    fn rollback_restores_everything() {
        let mut s = PackingState::new(3);
        let p01 = s.pair_index().index(0, 1);
        let p02 = s.pair_index().index(0, 2);
        s.assign(0, p01, EdgeState::Component);
        let mark = s.mark();
        s.assign(2, p02, EdgeState::Comparability);
        s.orient_arc(2, 2, 0);
        assert!(s.has_arc(2, 2, 0));
        s.rollback(mark);
        assert_eq!(s.state(2, p02), EdgeState::Unassigned);
        assert_eq!(s.orient(2, p02), Orient::None);
        assert!(!s.comparability_graph(2).has_edge(0, 2));
        // the earlier assignment survives
        assert_eq!(s.state(0, p01), EdgeState::Component);
        assert_eq!(s.unassigned_count(), 8);
    }

    #[test]
    fn arcs_reports_directions() {
        let mut s = PackingState::new(3);
        let p01 = s.pair_index().index(0, 1);
        let p12 = s.pair_index().index(1, 2);
        s.assign(2, p01, EdgeState::Comparability);
        s.orient_arc(2, 1, 0);
        s.assign(2, p12, EdgeState::Comparability);
        s.orient_arc(2, 1, 2);
        let mut arcs = s.arcs(2);
        arcs.sort_unstable();
        assert_eq!(arcs, vec![(1, 0), (1, 2)]);
        assert!(s.has_arc(2, 1, 0));
        assert!(!s.has_arc(2, 0, 1));
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn double_assign_panics() {
        let mut s = PackingState::new(2);
        s.assign(0, 0, EdgeState::Component);
        s.assign(0, 0, EdgeState::Component);
    }

    #[test]
    #[should_panic(expected = "only comparability edges")]
    fn orienting_component_edge_panics() {
        let mut s = PackingState::new(2);
        s.assign(2, 0, EdgeState::Component);
        s.orient_arc(2, 0, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random interleavings of assignments, orientations, and rollbacks must
    /// keep the materialized graphs consistent with the state table.
    fn consistent(s: &PackingState) -> bool {
        let idx = s.pair_index();
        for d in 0..3 {
            for (p, u, v) in idx.iter() {
                let in_component = s.component_graph(d).has_edge(u, v);
                let in_comparability = s.comparability_graph(d).has_edge(u, v);
                let expected = match s.state(d, p) {
                    EdgeState::Unassigned => !in_component && !in_comparability,
                    EdgeState::Component => in_component && !in_comparability,
                    EdgeState::Comparability => !in_component && in_comparability,
                };
                if !expected {
                    return false;
                }
                if s.orient(d, p) != Orient::None && s.state(d, p) != EdgeState::Comparability {
                    return false;
                }
            }
        }
        true
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_trail_replay_is_consistent(ops in proptest::collection::vec((0usize..3, 0usize..6, 0usize..4), 1..40)) {
            let n = 4;
            let mut s = PackingState::new(n);
            let mut marks: Vec<usize> = Vec::new();
            for (d, p, action) in ops {
                let p = p % s.pair_index().pair_count();
                match action {
                    0 if s.state(d, p) == EdgeState::Unassigned => {
                        s.assign(d, p, EdgeState::Component);
                    }
                    1 if s.state(d, p) == EdgeState::Unassigned => {
                        s.assign(d, p, EdgeState::Comparability);
                    }
                    2 => marks.push(s.mark()),
                    3 => {
                        if let Some(m) = marks.pop() {
                            s.rollback(m);
                        }
                    }
                    _ => {}
                }
                prop_assert!(consistent(&s), "inconsistent after op ({d}, {p}, {action})");
            }
            // Rolling everything back restores the pristine state.
            s.rollback(0);
            prop_assert!(consistent(&s));
            prop_assert_eq!(s.unassigned_count(), 3 * s.pair_index().pair_count());
        }
    }
}
