//! Structured solver telemetry: search events, sinks, and JSON reports.
//!
//! The branch-and-bound emits a [`SearchEvent`] stream (branch, propagate,
//! prune, backtrack, leaf — each tagged with the frontier-subtree id and the
//! branch depth) into an optional [`TelemetrySink`] configured through
//! [`SolverConfig::telemetry`](crate::SolverConfig::telemetry). Sinks run on
//! the search's worker threads, so they must be `Send + Sync`; the built-in
//! [`MemoryJournal`] keeps a bounded in-memory journal for post-mortem
//! analysis of the parallel search.
//!
//! Aggregate counters live in [`SolverStats`] regardless of whether a sink
//! is installed; [`SolveReport`] packages them (plus wall time and outcome)
//! into the versioned JSON document emitted by the CLI's `--stats-json` and
//! by the `recopack-bench` runner.
//!
//! # Event ordering
//!
//! In sequential mode the event stream is exactly the depth-first trace of
//! the search. In parallel mode events from different frontier subtrees
//! interleave nondeterministically, but every event carries its
//! [`SearchEvent::subtree`] id, so a per-subtree depth-first trace can be
//! recovered by a stable partition on that id.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::config::SolverStats;

/// Version of the JSON documents produced by [`SolveReport::to_json`],
/// [`SolverStats`] serialization, and the `recopack-bench` reports.
///
/// Bump this whenever a field is renamed, removed, or changes meaning;
/// adding fields is backward compatible and does not require a bump.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// The propagation rule (or check) that refuted a subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneRule {
    /// C2: a comparability clique (chain) exceeds the container.
    C2,
    /// C3: a pair overlapped in every dimension.
    C3,
    /// C1 (partial): an induced 4-cycle pattern was completed.
    C4,
    /// D1/D2 orientation implications clashed.
    Orientation,
}

impl PruneRule {
    /// Stable snake_case name used in telemetry JSON.
    pub const fn name(self) -> &'static str {
        match self {
            PruneRule::C2 => "c2",
            PruneRule::C3 => "c3",
            PruneRule::C4 => "c4",
            PruneRule::Orientation => "orientation",
        }
    }
}

impl std::fmt::Display for PruneRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened at one point of the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A branching decision fixed `(dim, pair)` to component (`true`) or
    /// comparability (`false`).
    Branch {
        /// Dense dimension index (`0` = x, `1` = y, `2` = time).
        dim: usize,
        /// Pair index in the instance's [`PairIndex`](recopack_graph::PairIndex).
        pair: usize,
        /// `true` for the component ("overlap") choice.
        component: bool,
    },
    /// A propagation cascade completed, fixing `fixes` further slots.
    Propagate {
        /// Edge states fixed by the cascade (excluding the branched slot).
        fixes: u64,
    },
    /// A propagation rule refuted the current subtree.
    Prune {
        /// The rule that fired.
        rule: PruneRule,
    },
    /// The search undid the most recent branching decision.
    Backtrack,
    /// A fully assigned leaf was realized and verified (`accepted`) or
    /// rejected by realization/verification.
    Leaf {
        /// Whether the leaf produced a valid placement.
        accepted: bool,
    },
}

impl EventKind {
    /// Stable snake_case name of the event type used in telemetry JSON.
    pub const fn name(&self) -> &'static str {
        match self {
            EventKind::Branch { .. } => "branch",
            EventKind::Propagate { .. } => "propagate",
            EventKind::Prune { .. } => "prune",
            EventKind::Backtrack => "backtrack",
            EventKind::Leaf { .. } => "leaf",
        }
    }
}

/// One entry of the search event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchEvent {
    /// Frontier-subtree id: `0` for the sequential search and the frontier
    /// expansion, the subtree's depth-first frontier index in parallel mode.
    pub subtree: usize,
    /// Branching depth at which the event occurred.
    pub depth: u32,
    /// The event itself.
    pub kind: EventKind,
}

impl SearchEvent {
    /// Serializes the event as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write_event(&mut out, self);
        out
    }
}

fn write_event(out: &mut String, e: &SearchEvent) -> std::fmt::Result {
    use std::fmt::Write as _;
    write!(
        out,
        "{{\"subtree\":{},\"depth\":{},\"event\":\"{}\"",
        e.subtree,
        e.depth,
        e.kind.name()
    )?;
    match e.kind {
        EventKind::Branch {
            dim,
            pair,
            component,
        } => write!(
            out,
            ",\"dim\":{dim},\"pair\":{pair},\"component\":{component}"
        )?,
        EventKind::Propagate { fixes } => write!(out, ",\"fixes\":{fixes}")?,
        EventKind::Prune { rule } => write!(out, ",\"rule\":\"{}\"", rule.name())?,
        EventKind::Backtrack => {}
        EventKind::Leaf { accepted } => write!(out, ",\"accepted\":{accepted}")?,
    }
    out.push('}');
    Ok(())
}

/// A consumer of the solver's event stream.
///
/// Implementations must be cheap and non-blocking: `record` is called from
/// the search hot path (once per branch/prune/backtrack, once per completed
/// propagation cascade) on every worker thread.
pub trait TelemetrySink: Send + Sync {
    /// Called for every search event.
    fn record(&self, event: &SearchEvent);

    /// Called once per completed search with the merged statistics.
    fn search_finished(&self, stats: &SolverStats) {
        let _ = stats;
    }
}

/// The telemetry handle stored in
/// [`SolverConfig`](crate::SolverConfig): either disabled (the default,
/// zero-cost) or an [`Arc`] to a shared [`TelemetrySink`].
///
/// Equality compares sink *identity* (same `Arc`), which keeps
/// [`SolverConfig`](crate::SolverConfig) `Eq` without requiring sinks to be
/// comparable.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl Telemetry {
    /// The disabled handle (no events are recorded).
    pub const fn none() -> Self {
        Self { sink: None }
    }

    /// A handle delivering events to `sink`.
    pub fn to(sink: Arc<dyn TelemetrySink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// Whether a sink is installed; events are delivered only when `true`.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Delivers one event to the sink, if any.
    pub(crate) fn emit(&self, event: SearchEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&event);
        }
    }

    /// Signals the end of a search to the sink, if any.
    pub(crate) fn finish(&self, stats: &SolverStats) {
        if let Some(sink) = &self.sink {
            sink.search_finished(stats);
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.sink {
            Some(_) => f.write_str("Telemetry(enabled)"),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        match (&self.sink, &other.sink) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for Telemetry {}

/// A bounded in-memory event journal for post-mortem analysis.
///
/// Records up to `capacity` events and counts the overflow, so a runaway
/// search cannot exhaust memory through its own diagnostics. Thread-safe:
/// all workers of a parallel search append to the same journal (see the
/// module docs on event ordering).
pub struct MemoryJournal {
    capacity: usize,
    events: Mutex<Vec<SearchEvent>>,
    dropped: AtomicU64,
    finished: AtomicU64,
}

impl MemoryJournal {
    /// A journal retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            finished: AtomicU64::new(0),
        }
    }

    /// A copy of the recorded events, in arrival order.
    pub fn events(&self) -> Vec<SearchEvent> {
        self.events.lock().expect("no poisoned locks").clone()
    }

    /// Events discarded after the journal filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Completed searches observed (one per `Search::run`; optimization
    /// solvers like BMP/SPP run one search per decision).
    pub fn searches_finished(&self) -> u64 {
        self.finished.load(Ordering::Relaxed)
    }

    /// Serializes the journal as a JSON object with an `events` array.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let events = self.events();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema_version\":{TELEMETRY_SCHEMA_VERSION},\"capacity\":{},\"dropped\":{},\"events\":[",
            self.capacity,
            self.dropped()
        );
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write_event(&mut out, e);
        }
        out.push_str("]}");
        out
    }
}

impl TelemetrySink for MemoryJournal {
    fn record(&self, event: &SearchEvent) {
        let mut events = self.events.lock().expect("no poisoned locks");
        if events.len() < self.capacity {
            events.push(*event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn search_finished(&self, _stats: &SolverStats) {
        self.finished.fetch_add(1, Ordering::Relaxed);
    }
}

/// Escapes `s` into `out` as a JSON string literal (with quotes).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes [`SolverStats`] as a JSON object (one element of the telemetry
/// schema; see `SolveReport::to_json` for the enclosing document).
pub fn stats_to_json(stats: &SolverStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"nodes\":{},\"leaves\":{},\"leaf_rejections\":{},\"propagated_fixes\":{},\"arc_fixations\":{},\"budget_checks\":{}",
        stats.nodes,
        stats.leaves,
        stats.leaf_rejections,
        stats.propagated_fixes,
        stats.arc_fixations,
        stats.budget_checks,
    );
    let _ = write!(
        out,
        ",\"conflicts\":{{\"c2\":{},\"c3\":{},\"c4\":{},\"orientation\":{}}}",
        stats.c2_conflicts, stats.c3_conflicts, stats.c4_conflicts, stats.orientation_conflicts,
    );
    out.push_str(",\"depth_histogram\":[");
    for (i, count) in stats.depth_histogram.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{count}");
    }
    let _ = write!(
        out,
        "],\"refuted_by_bounds\":{},\"refuting_bound\":",
        stats.refuted_by_bounds
    );
    match stats.refuting_bound {
        Some(kind) => push_json_str(&mut out, kind.name()),
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"solved_by_heuristic\":{}}}",
        stats.solved_by_heuristic
    );
    out
}

/// A complete per-solve telemetry report: the document written by the CLI's
/// `--stats-json <path>` and embedded per instance in `recopack-bench`
/// output.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// The subcommand or problem family that ran (`solve`, `bmp`, ...).
    pub command: String,
    /// Instance identification (file path or generator name).
    pub instance: String,
    /// Human-stable outcome: `feasible`, `infeasible`, `node limit`,
    /// `time limit`, or an optimization summary.
    pub outcome: String,
    /// Worker threads requested.
    pub threads: usize,
    /// Exact decision problems solved (1 for `solve`, the binary-search
    /// count for `bmp`/`spp`, the sweep total for `pareto`).
    pub decisions: u32,
    /// Wall-clock time of the whole command, in milliseconds.
    pub wall_ms: f64,
    /// Aggregated counters over all decisions and threads.
    pub stats: SolverStats,
}

impl SolveReport {
    /// Serializes the report as a versioned JSON document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"schema_version\":{TELEMETRY_SCHEMA_VERSION}");
        out.push_str(",\"command\":");
        push_json_str(&mut out, &self.command);
        out.push_str(",\"instance\":");
        push_json_str(&mut out, &self.instance);
        out.push_str(",\"outcome\":");
        push_json_str(&mut out, &self.outcome);
        let _ = write!(
            out,
            ",\"threads\":{},\"decisions\":{},\"wall_ms\":{:.3},\"stats\":{}}}",
            self.threads,
            self.decisions,
            self.wall_ms,
            stats_to_json(&self.stats)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_bounds::BoundKind;

    #[test]
    fn telemetry_handle_equality_is_identity() {
        let a: Arc<dyn TelemetrySink> = Arc::new(MemoryJournal::new(4));
        let b: Arc<dyn TelemetrySink> = Arc::new(MemoryJournal::new(4));
        assert_eq!(Telemetry::none(), Telemetry::none());
        assert_eq!(Telemetry::to(a.clone()), Telemetry::to(a.clone()));
        assert_ne!(Telemetry::to(a.clone()), Telemetry::to(b));
        assert_ne!(Telemetry::to(a), Telemetry::none());
        assert!(!Telemetry::none().is_enabled());
        assert_eq!(format!("{:?}", Telemetry::none()), "Telemetry(disabled)");
    }

    #[test]
    fn journal_bounds_its_capacity() {
        let journal = MemoryJournal::new(2);
        for depth in 0..5 {
            journal.record(&SearchEvent {
                subtree: 0,
                depth,
                kind: EventKind::Backtrack,
            });
        }
        assert_eq!(journal.events().len(), 2);
        assert_eq!(journal.dropped(), 3);
        let json = journal.to_json();
        assert!(json.contains("\"dropped\":3"), "{json}");
        assert!(json.contains("\"event\":\"backtrack\""), "{json}");
    }

    #[test]
    fn events_serialize_their_payload() {
        let branch = SearchEvent {
            subtree: 3,
            depth: 7,
            kind: EventKind::Branch {
                dim: 2,
                pair: 9,
                component: true,
            },
        };
        assert_eq!(
            branch.to_json(),
            "{\"subtree\":3,\"depth\":7,\"event\":\"branch\",\"dim\":2,\"pair\":9,\"component\":true}"
        );
        let prune = SearchEvent {
            subtree: 0,
            depth: 1,
            kind: EventKind::Prune {
                rule: PruneRule::C4,
            },
        };
        assert!(prune.to_json().contains("\"rule\":\"c4\""));
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn stats_json_covers_every_counter() {
        let stats = SolverStats {
            nodes: 5,
            leaves: 1,
            c2_conflicts: 2,
            depth_histogram: vec![1, 2, 2],
            refuting_bound: Some(BoundKind::Dff),
            refuted_by_bounds: true,
            ..SolverStats::default()
        };
        let json = stats_to_json(&stats);
        assert!(json.contains("\"nodes\":5"), "{json}");
        assert!(json.contains("\"c2\":2"), "{json}");
        assert!(json.contains("\"depth_histogram\":[1,2,2]"), "{json}");
        assert!(json.contains("\"refuting_bound\":\"dff\""), "{json}");
    }

    #[test]
    fn search_streams_events_into_the_journal() {
        use crate::{Opp, SolveOutcome, SolverConfig};
        use recopack_model::{Chip, Instance, Task};

        let journal = Arc::new(MemoryJournal::new(100_000));
        let config = SolverConfig {
            use_bounds: false,
            use_heuristics: false,
            telemetry: Telemetry::to(journal.clone()),
            ..SolverConfig::default()
        };
        // Search-heavy infeasible: five 2x2x2 tasks, one 4x4 time slot.
        let mut builder = Instance::builder().chip(Chip::square(4)).horizon(2);
        for i in 0..5 {
            builder = builder.task(Task::new(format!("t{i}"), 2, 2, 2));
        }
        let instance = builder.build().expect("valid").with_transitive_closure();
        let (outcome, stats) = Opp::new(&instance).with_config(config).solve_with_stats();
        assert!(matches!(outcome, SolveOutcome::Infeasible(_)));
        assert_eq!(journal.searches_finished(), 1);
        assert_eq!(journal.dropped(), 0);

        let events = journal.events();
        let count = |name: &str| events.iter().filter(|e| e.kind.name() == name).count() as u64;
        assert!(stats.nodes > 0, "the instance must actually search");
        // Every conflict surfaces as a prune event, every successful
        // cascade as a propagate event, and every cascade except the
        // root seeding one follows a branch.
        assert_eq!(count("prune"), stats.conflicts());
        assert_eq!(count("branch") + 1, count("prune") + count("propagate"));
        assert_eq!(count("leaf"), stats.leaves);
        assert!(count("backtrack") > 0);
        // Sequential search: every event sits in subtree 0.
        assert!(events.iter().all(|e| e.subtree == 0));
    }

    #[test]
    fn report_is_versioned() {
        let report = SolveReport {
            command: "solve".into(),
            instance: "x.rpk".into(),
            outcome: "feasible".into(),
            threads: 2,
            decisions: 1,
            wall_ms: 1.25,
            stats: SolverStats::default(),
        };
        let json = report.to_json();
        assert!(
            json.starts_with(&format!("{{\"schema_version\":{TELEMETRY_SCHEMA_VERSION}")),
            "{json}"
        );
        assert!(json.contains("\"wall_ms\":1.250"), "{json}");
        assert!(json.contains("\"stats\":{"), "{json}");
    }
}
