//! Structured solver telemetry: search events, sinks, and JSON reports.
//!
//! The branch-and-bound emits a [`SearchEvent`] stream (branch, propagate,
//! prune, backtrack, leaf — each tagged with its work-unit id, the
//! branch depth, and a monotonic timestamp) into an optional
//! [`TelemetrySink`] configured through
//! [`SolverConfig::telemetry`](crate::SolverConfig::telemetry). Sinks run on
//! the search's worker threads, so they must be `Send + Sync`. Built-in
//! sinks:
//!
//! * [`MemoryJournal`] — a bounded in-memory journal for post-mortem
//!   analysis of the parallel search;
//! * [`FileJournal`] — a streaming newline-delimited-JSON (NDJSON) writer
//!   with per-worker shard buffers (no global lock on the hot path), read
//!   back by the `recopack trace` exporters;
//! * [`ProgressCounters`] — lock-free atomic event totals, sampled by the
//!   CLI's live `--progress` reporter and embedded in [`SolveReport`];
//! * [`Fanout`] — delivers each event to several sinks.
//!
//! Aggregate counters live in [`SolverStats`] regardless of whether a sink
//! is installed; [`SolveReport`] packages them (plus wall time, outcome,
//! optional event totals, and the journal's dropped count) into the
//! versioned JSON document emitted by the CLI's `--stats-json` and by the
//! `recopack-bench` runner.
//!
//! # Event ordering and timestamps
//!
//! In sequential mode the event stream is exactly the depth-first trace of
//! the search. In parallel mode events from different work units
//! interleave nondeterministically, but every event carries its
//! [`SearchEvent::subtree`] id, so a per-unit depth-first trace can be
//! recovered by a stable partition on that id. [`SearchEvent::t_ns`] is
//! captured per worker from the search's shared [`std::time::Instant`]
//! epoch, so timestamps of different unit streams are mergeable onto one
//! timeline; optimization solvers (BMP/SPP/Pareto) run one search per
//! decision, and each search restarts the epoch at zero.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::config::SolverStats;

/// Version of the JSON documents produced by [`SolveReport::to_json`],
/// [`SolverStats`] serialization, and the `recopack-bench` reports.
///
/// Bump this whenever a field is renamed, removed, or changes meaning;
/// adding fields is backward compatible and does not require a bump.
///
/// History: **1** — initial schema (PR 2); **2** — events carry `t_ns`,
/// stats carry a `timings` object, reports carry `events` totals and
/// `journal_dropped` (PR 3).
pub const TELEMETRY_SCHEMA_VERSION: u32 = 2;

/// The propagation rule (or check) that refuted a subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneRule {
    /// C2: a comparability clique (chain) exceeds the container.
    C2,
    /// C3: a pair overlapped in every dimension.
    C3,
    /// C1 (partial): an induced 4-cycle pattern was completed.
    C4,
    /// D1/D2 orientation implications clashed.
    Orientation,
}

impl PruneRule {
    /// Every rule, in [`PruneRule::index`] order.
    pub const ALL: [PruneRule; 4] = [
        PruneRule::C2,
        PruneRule::C3,
        PruneRule::C4,
        PruneRule::Orientation,
    ];

    /// Stable snake_case name used in telemetry JSON.
    pub const fn name(self) -> &'static str {
        match self {
            PruneRule::C2 => "c2",
            PruneRule::C3 => "c3",
            PruneRule::C4 => "c4",
            PruneRule::Orientation => "orientation",
        }
    }

    /// Dense index into per-rule arrays ([`SolverStats::prune_ns`],
    /// [`EventTotals::prunes`]); inverse of indexing [`PruneRule::ALL`].
    pub const fn index(self) -> usize {
        match self {
            PruneRule::C2 => 0,
            PruneRule::C3 => 1,
            PruneRule::C4 => 2,
            PruneRule::Orientation => 3,
        }
    }
}

impl std::fmt::Display for PruneRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened at one point of the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A branching decision fixed `(dim, pair)` to component (`true`) or
    /// comparability (`false`).
    Branch {
        /// Dense dimension index (`0` = x, `1` = y, `2` = time).
        dim: usize,
        /// Pair index in the instance's [`PairIndex`](recopack_graph::PairIndex).
        pair: usize,
        /// `true` for the component ("overlap") choice.
        component: bool,
    },
    /// A propagation cascade completed, fixing `fixes` further slots.
    Propagate {
        /// Edge states fixed by the cascade (excluding the branched slot).
        fixes: u64,
    },
    /// A propagation rule refuted the current subtree.
    Prune {
        /// The rule that fired.
        rule: PruneRule,
    },
    /// The search undid the most recent branching decision.
    Backtrack,
    /// A fully assigned leaf was realized and verified (`accepted`) or
    /// rejected by realization/verification.
    Leaf {
        /// Whether the leaf produced a valid placement.
        accepted: bool,
    },
}

impl EventKind {
    /// Stable snake_case name of the event type used in telemetry JSON.
    pub const fn name(&self) -> &'static str {
        match self {
            EventKind::Branch { .. } => "branch",
            EventKind::Propagate { .. } => "propagate",
            EventKind::Prune { .. } => "prune",
            EventKind::Backtrack => "backtrack",
            EventKind::Leaf { .. } => "leaf",
        }
    }
}

/// One entry of the search event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchEvent {
    /// Work-unit id: `0` for the sequential search and the parallel root
    /// unit, then one fresh id per stolen unit, in offer order.
    pub subtree: usize,
    /// Branching depth at which the event occurred.
    pub depth: u32,
    /// Monotonic nanoseconds since the search started, captured per worker
    /// from one shared epoch — subtree streams merge onto a single
    /// timeline. The clock is read only when a sink is installed, so a
    /// disabled [`Telemetry`] costs zero clock reads.
    pub t_ns: u64,
    /// The event itself.
    pub kind: EventKind,
}

impl SearchEvent {
    /// Serializes the event as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write_event(&mut out, self);
        out
    }
}

fn write_event(out: &mut String, e: &SearchEvent) -> std::fmt::Result {
    use std::fmt::Write as _;
    write!(
        out,
        "{{\"subtree\":{},\"depth\":{},\"t_ns\":{},\"event\":\"{}\"",
        e.subtree,
        e.depth,
        e.t_ns,
        e.kind.name()
    )?;
    match e.kind {
        EventKind::Branch {
            dim,
            pair,
            component,
        } => write!(
            out,
            ",\"dim\":{dim},\"pair\":{pair},\"component\":{component}"
        )?,
        EventKind::Propagate { fixes } => write!(out, ",\"fixes\":{fixes}")?,
        EventKind::Prune { rule } => write!(out, ",\"rule\":\"{}\"", rule.name())?,
        EventKind::Backtrack => {}
        EventKind::Leaf { accepted } => write!(out, ",\"accepted\":{accepted}")?,
    }
    out.push('}');
    Ok(())
}

/// A consumer of the solver's event stream.
///
/// Implementations must be cheap and non-blocking: `record` is called from
/// the search hot path (once per branch/prune/backtrack, once per completed
/// propagation cascade) on every worker thread.
pub trait TelemetrySink: Send + Sync {
    /// Called for every search event.
    fn record(&self, event: &SearchEvent);

    /// Called once per completed search with the merged statistics.
    fn search_finished(&self, stats: &SolverStats) {
        let _ = stats;
    }
}

/// The telemetry handle stored in
/// [`SolverConfig`](crate::SolverConfig): either disabled (the default,
/// zero-cost) or an [`Arc`] to a shared [`TelemetrySink`].
///
/// Equality compares sink *identity* (same `Arc`), which keeps
/// [`SolverConfig`](crate::SolverConfig) `Eq` without requiring sinks to be
/// comparable.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl Telemetry {
    /// The disabled handle (no events are recorded).
    pub const fn none() -> Self {
        Self { sink: None }
    }

    /// A handle delivering events to `sink`.
    pub fn to(sink: Arc<dyn TelemetrySink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// Whether a sink is installed; events are delivered only when `true`.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Delivers one event to the sink, if any.
    pub(crate) fn emit(&self, event: SearchEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&event);
        }
    }

    /// Signals the end of a search to the sink, if any.
    pub(crate) fn finish(&self, stats: &SolverStats) {
        if let Some(sink) = &self.sink {
            sink.search_finished(stats);
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.sink {
            Some(_) => f.write_str("Telemetry(enabled)"),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        match (&self.sink, &other.sink) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for Telemetry {}

/// A bounded in-memory event journal for post-mortem analysis.
///
/// Records up to `capacity` events and counts the overflow, so a runaway
/// search cannot exhaust memory through its own diagnostics. Thread-safe:
/// all workers of a parallel search append to the same journal (see the
/// module docs on event ordering).
pub struct MemoryJournal {
    capacity: usize,
    events: Mutex<Vec<SearchEvent>>,
    dropped: AtomicU64,
    finished: AtomicU64,
}

impl MemoryJournal {
    /// A journal retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            finished: AtomicU64::new(0),
        }
    }

    /// A copy of the recorded events, in arrival order.
    pub fn events(&self) -> Vec<SearchEvent> {
        self.events.lock().expect("no poisoned locks").clone()
    }

    /// Events discarded after the journal filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Completed searches observed (one per `Search::run`; optimization
    /// solvers like BMP/SPP run one search per decision).
    pub fn searches_finished(&self) -> u64 {
        self.finished.load(Ordering::Relaxed)
    }

    /// Serializes the journal as a JSON object with an `events` array.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let events = self.events();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema_version\":{TELEMETRY_SCHEMA_VERSION},\"capacity\":{},\"dropped\":{},\"events\":[",
            self.capacity,
            self.dropped()
        );
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write_event(&mut out, e);
        }
        out.push_str("]}");
        out
    }
}

impl TelemetrySink for MemoryJournal {
    fn record(&self, event: &SearchEvent) {
        let mut events = self.events.lock().expect("no poisoned locks");
        if events.len() < self.capacity {
            events.push(*event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn search_finished(&self, _stats: &SolverStats) {
        self.finished.fetch_add(1, Ordering::Relaxed);
    }
}

/// A sink that forwards every event to several sinks, in order.
///
/// Used by the CLI when both `--trace` (a [`FileJournal`]) and
/// `--progress` (a [`ProgressCounters`]) are requested on one solve.
pub struct Fanout {
    sinks: Vec<Arc<dyn TelemetrySink>>,
}

impl Fanout {
    /// A fanout over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TelemetrySink>>) -> Self {
        Self { sinks }
    }
}

impl TelemetrySink for Fanout {
    fn record(&self, event: &SearchEvent) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn search_finished(&self, stats: &SolverStats) {
        for sink in &self.sinks {
            sink.search_finished(stats);
        }
    }
}

/// A snapshot of event totals: how often each [`EventKind`] fired, split by
/// prune rule and leaf verdict, plus the deepest branching level seen.
///
/// Produced by [`ProgressCounters::snapshot`] and embedded (optionally) in
/// [`SolveReport`]. For exhausted searches these totals are thread-count
/// invariant, like the [`SolverStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventTotals {
    /// Branch decisions tried (two per fully explored interior node).
    pub branches: u64,
    /// Successful propagation cascades.
    pub propagates: u64,
    /// Prunes per rule, indexed by [`PruneRule::index`].
    pub prunes: [u64; 4],
    /// Backtracks (one per abandoned branch decision).
    pub backtracks: u64,
    /// Leaves accepted by realization and verification.
    pub leaves_accepted: u64,
    /// Leaves rejected by realization or verification.
    pub leaves_rejected: u64,
    /// Deepest branching level an event was tagged with.
    pub max_depth: u64,
}

impl EventTotals {
    /// Total events across every kind.
    pub fn total(&self) -> u64 {
        self.branches
            + self.propagates
            + self.prunes.iter().sum::<u64>()
            + self.backtracks
            + self.leaves_accepted
            + self.leaves_rejected
    }

    /// Total prunes across every rule.
    pub fn prunes_total(&self) -> u64 {
        self.prunes.iter().sum()
    }

    /// Serializes the totals as a JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"branch\":{},\"propagate\":{},\"prune\":{{",
            self.branches, self.propagates
        );
        for rule in PruneRule::ALL {
            if rule.index() > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", rule.name(), self.prunes[rule.index()]);
        }
        let _ = write!(
            out,
            "}},\"backtrack\":{},\"leaf_accepted\":{},\"leaf_rejected\":{},\"max_depth\":{}}}",
            self.backtracks, self.leaves_accepted, self.leaves_rejected, self.max_depth
        );
        out
    }
}

/// Depth slots tracked by [`ProgressCounters::depth_profile`]. Branches
/// deeper than the last slot are clamped into it, so the profile stays a
/// fixed-size set of relaxed atomics no matter how deep the search goes.
const PROGRESS_DEPTH_SLOTS: usize = 32;

/// A lock-free counting sink: per-kind atomic totals that can be read at
/// any moment *during* a search, which is what the CLI's `--progress`
/// sampler thread does.
///
/// Counters use relaxed atomics; a mid-search [`snapshot`] may be slightly
/// torn across counters (never within one), which is fine for display. A
/// snapshot taken after the search completes is exact.
///
/// [`snapshot`]: ProgressCounters::snapshot
#[derive(Debug, Default)]
pub struct ProgressCounters {
    branches: AtomicU64,
    propagates: AtomicU64,
    prunes: [AtomicU64; 4],
    backtracks: AtomicU64,
    leaves_accepted: AtomicU64,
    leaves_rejected: AtomicU64,
    max_depth: AtomicU64,
    searches: AtomicU64,
    depths: [AtomicU64; PROGRESS_DEPTH_SLOTS],
}

impl ProgressCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current totals.
    pub fn snapshot(&self) -> EventTotals {
        EventTotals {
            branches: self.branches.load(Ordering::Relaxed),
            propagates: self.propagates.load(Ordering::Relaxed),
            prunes: std::array::from_fn(|i| self.prunes[i].load(Ordering::Relaxed)),
            backtracks: self.backtracks.load(Ordering::Relaxed),
            leaves_accepted: self.leaves_accepted.load(Ordering::Relaxed),
            leaves_rejected: self.leaves_rejected.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
        }
    }

    /// Completed searches observed (one per decision problem).
    pub fn searches_finished(&self) -> u64 {
        self.searches.load(Ordering::Relaxed)
    }

    /// Branch decisions per depth, slot `d` counting branches taken at
    /// depth `d`; depths beyond the last slot are clamped into it and
    /// trailing all-zero slots are trimmed. A live, bounded stand-in for
    /// [`SolverStats::depth_histogram`], readable mid-search.
    pub fn depth_profile(&self) -> Vec<u64> {
        let mut profile: Vec<u64> = self
            .depths
            .iter()
            .map(|slot| slot.load(Ordering::Relaxed))
            .collect();
        while profile.last() == Some(&0) {
            profile.pop();
        }
        profile
    }
}

impl TelemetrySink for ProgressCounters {
    fn record(&self, event: &SearchEvent) {
        match event.kind {
            EventKind::Branch { .. } => {
                self.branches.fetch_add(1, Ordering::Relaxed);
                let slot = (event.depth as usize).min(PROGRESS_DEPTH_SLOTS - 1);
                self.depths[slot].fetch_add(1, Ordering::Relaxed);
            }
            EventKind::Propagate { .. } => {
                self.propagates.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::Prune { rule } => {
                self.prunes[rule.index()].fetch_add(1, Ordering::Relaxed);
            }
            EventKind::Backtrack => {
                self.backtracks.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::Leaf { accepted: true } => {
                self.leaves_accepted.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::Leaf { accepted: false } => {
                self.leaves_rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.max_depth
            .fetch_max(u64::from(event.depth), Ordering::Relaxed);
    }

    fn search_finished(&self, _stats: &SolverStats) {
        self.searches.fetch_add(1, Ordering::Relaxed);
    }
}

/// How many shard buffers a [`FileJournal`] spreads worker threads over.
/// A power of two comfortably above any sane `--threads` value.
const FILE_JOURNAL_SHARDS: usize = 16;

/// Bytes a shard buffer accumulates before it is flushed to the file.
const FILE_JOURNAL_FLUSH_BYTES: usize = 64 * 1024;

/// One shard of a [`FileJournal`]: pending NDJSON bytes plus the number of
/// complete lines they hold (so IO failures can count what was lost).
#[derive(Default)]
struct JournalShard {
    buf: String,
    pending: u64,
}

/// The shared file half of a [`FileJournal`], with a sticky first error.
struct JournalFile {
    file: std::fs::File,
    error: Option<std::io::Error>,
}

/// A streaming NDJSON sink: events are serialized into per-worker shard
/// buffers (selected by thread id, so the hot path never touches a global
/// lock) and flushed to a file in buffer-sized chunks.
///
/// Per-unit order is preserved: a work unit is searched by one worker
/// thread, that thread always lands in the same shard, and a shard is
/// flushed under its own lock — so lines of one unit appear in the file
/// in emission order, merely interleaved with other units' chunks.
///
/// The journal is bounded like [`MemoryJournal`]: an optional event
/// capacity plus fixed-size shard buffers. Events beyond the capacity, and
/// events lost to write errors, increment an explicit [`dropped`] counter —
/// a truncated trace is detectable, never silent. The first IO error is
/// sticky and re-surfaced by [`flush`].
///
/// [`dropped`]: FileJournal::dropped
/// [`flush`]: FileJournal::flush
pub struct FileJournal {
    shards: Vec<Mutex<JournalShard>>,
    file: Mutex<JournalFile>,
    flush_bytes: usize,
    capacity: u64,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl FileJournal {
    /// Creates (truncating) `path` with no event capacity limit.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Self::with_capacity(path, u64::MAX)
    }

    /// Creates (truncating) `path`, recording at most `capacity` events.
    pub fn with_capacity(path: &std::path::Path, capacity: u64) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            shards: (0..FILE_JOURNAL_SHARDS)
                .map(|_| Mutex::new(JournalShard::default()))
                .collect(),
            file: Mutex::new(JournalFile { file, error: None }),
            flush_bytes: FILE_JOURNAL_FLUSH_BYTES,
            capacity,
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Events discarded — past the capacity or lost to write errors.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events accepted into the journal so far.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed).min(self.capacity)
    }

    /// The shard the calling thread writes to.
    fn shard(&self) -> &Mutex<JournalShard> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::hash::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        &self.shards[hasher.finish() as usize % self.shards.len()]
    }

    /// Writes a shard's pending bytes to the file. Must be called with the
    /// shard lock held, so flushes of one shard stay in emission order.
    fn write_out(&self, shard: &mut JournalShard) {
        if shard.buf.is_empty() {
            return;
        }
        let mut file = self.file.lock().expect("no poisoned locks");
        match file.file.write_all(shard.buf.as_bytes()) {
            Ok(()) => {}
            Err(e) => {
                self.dropped.fetch_add(shard.pending, Ordering::Relaxed);
                if file.error.is_none() {
                    file.error = Some(e);
                }
            }
        }
        shard.buf.clear();
        shard.pending = 0;
    }

    /// Flushes every shard buffer and the file, returning the first IO
    /// error encountered over the journal's whole lifetime.
    pub fn flush(&self) -> std::io::Result<()> {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("no poisoned locks");
            self.write_out(&mut shard);
        }
        let mut file = self.file.lock().expect("no poisoned locks");
        if let Some(e) = file.error.take() {
            return Err(e);
        }
        file.file.flush()
    }
}

impl TelemetrySink for FileJournal {
    fn record(&self, event: &SearchEvent) {
        if self.recorded.fetch_add(1, Ordering::Relaxed) >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut shard = self.shard().lock().expect("no poisoned locks");
        let _ = write_event(&mut shard.buf, event);
        shard.buf.push('\n');
        shard.pending += 1;
        if shard.buf.len() >= self.flush_bytes {
            self.write_out(&mut shard);
        }
    }

    fn search_finished(&self, _stats: &SolverStats) {
        // Flush buffered lines but keep any sticky error for `flush`.
        for shard in &self.shards {
            let mut shard = shard.lock().expect("no poisoned locks");
            self.write_out(&mut shard);
        }
    }
}

impl Drop for FileJournal {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Escapes `s` into `out` as a JSON string literal (with quotes).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes [`SolverStats`] as a JSON object (one element of the telemetry
/// schema; see `SolveReport::to_json` for the enclosing document).
pub fn stats_to_json(stats: &SolverStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"nodes\":{},\"leaves\":{},\"leaf_rejections\":{},\"propagated_fixes\":{},\"arc_fixations\":{},\"propagation_events\":{},\"budget_checks\":{}",
        stats.nodes,
        stats.leaves,
        stats.leaf_rejections,
        stats.propagated_fixes,
        stats.arc_fixations,
        stats.propagation_events,
        stats.budget_checks,
    );
    let _ = write!(
        out,
        ",\"conflicts\":{{\"c2\":{},\"c3\":{},\"c4\":{},\"orientation\":{}}}",
        stats.c2_conflicts, stats.c3_conflicts, stats.c4_conflicts, stats.orientation_conflicts,
    );
    out.push_str(",\"depth_histogram\":[");
    for (i, count) in stats.depth_histogram.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{count}");
    }
    let _ = write!(
        out,
        "],\"refuted_by_bounds\":{},\"refuting_bound\":",
        stats.refuted_by_bounds
    );
    match stats.refuting_bound {
        Some(kind) => push_json_str(&mut out, kind.name()),
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"solved_by_heuristic\":{}",
        stats.solved_by_heuristic
    );
    let _ = write!(
        out,
        ",\"timings\":{{\"propagate_ns\":{},\"bounds_ns\":{},\"realize_ns\":{},\"prune_ns\":{{",
        stats.propagate_ns, stats.bounds_ns, stats.realize_ns,
    );
    for rule in PruneRule::ALL {
        if rule.index() > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", rule.name(), stats.prune_ns[rule.index()]);
    }
    out.push_str("}}}");
    out
}

/// A complete per-solve telemetry report: the document written by the CLI's
/// `--stats-json <path>` and embedded per instance in `recopack-bench`
/// output.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// The subcommand or problem family that ran (`solve`, `bmp`, ...).
    pub command: String,
    /// Instance identification (file path or generator name).
    pub instance: String,
    /// Human-stable outcome: `feasible`, `infeasible`, `node limit`,
    /// `time limit`, or an optimization summary.
    pub outcome: String,
    /// Worker threads requested.
    pub threads: usize,
    /// Exact decision problems solved (1 for `solve`, the binary-search
    /// count for `bmp`/`spp`, the sweep total for `pareto`).
    pub decisions: u32,
    /// Wall-clock time of the whole command, in milliseconds.
    pub wall_ms: f64,
    /// Aggregated counters over all decisions and threads.
    pub stats: SolverStats,
    /// Event totals observed by a [`ProgressCounters`] sink, when one was
    /// installed (`--trace`/`--progress`); `null` in JSON otherwise.
    pub events: Option<EventTotals>,
    /// Events dropped by the trace journal (capacity overflow or write
    /// errors), when a journal was installed; `null` in JSON otherwise.
    pub journal_dropped: Option<u64>,
    /// Search throughput in explored nodes per second of wall-clock time,
    /// when the producer measured it; `null` in JSON otherwise.
    pub nodes_per_sec: Option<f64>,
    /// Propagation-queue throughput in processed events per second of
    /// wall-clock time, when the producer measured it; `null` in JSON
    /// otherwise.
    pub propagation_events_per_sec: Option<f64>,
}

/// Throughput of `count` events over `wall_ms` milliseconds, in events per
/// second — `None` when no wall-clock time elapsed (a rate computed from a
/// zero denominator would be infinite, which JSON cannot represent).
///
/// This is *the* rate computation behind every `*_per_sec` field of
/// [`SolveReport`], shared by the CLI, the bench runner, and the job
/// server so the zero-guard and units cannot drift apart.
pub fn per_second(count: u64, wall_ms: f64) -> Option<f64> {
    (wall_ms > 0.0).then(|| count as f64 / (wall_ms / 1000.0))
}

impl SolveReport {
    /// Serializes the report as a versioned JSON document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"schema_version\":{TELEMETRY_SCHEMA_VERSION}");
        out.push_str(",\"command\":");
        push_json_str(&mut out, &self.command);
        out.push_str(",\"instance\":");
        push_json_str(&mut out, &self.instance);
        out.push_str(",\"outcome\":");
        push_json_str(&mut out, &self.outcome);
        let _ = write!(
            out,
            ",\"threads\":{},\"decisions\":{},\"wall_ms\":{:.3},\"stats\":{}",
            self.threads,
            self.decisions,
            self.wall_ms,
            stats_to_json(&self.stats)
        );
        out.push_str(",\"events\":");
        match &self.events {
            Some(totals) => out.push_str(&totals.to_json()),
            None => out.push_str("null"),
        }
        out.push_str(",\"journal_dropped\":");
        match self.journal_dropped {
            Some(n) => {
                let _ = write!(out, "{n}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"nodes_per_sec\":");
        match self.nodes_per_sec {
            Some(rate) => {
                let _ = write!(out, "{rate:.1}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"propagation_events_per_sec\":");
        match self.propagation_events_per_sec {
            Some(rate) => {
                let _ = write!(out, "{rate:.1}");
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_bounds::BoundKind;

    #[test]
    fn telemetry_handle_equality_is_identity() {
        let a: Arc<dyn TelemetrySink> = Arc::new(MemoryJournal::new(4));
        let b: Arc<dyn TelemetrySink> = Arc::new(MemoryJournal::new(4));
        assert_eq!(Telemetry::none(), Telemetry::none());
        assert_eq!(Telemetry::to(a.clone()), Telemetry::to(a.clone()));
        assert_ne!(Telemetry::to(a.clone()), Telemetry::to(b));
        assert_ne!(Telemetry::to(a), Telemetry::none());
        assert!(!Telemetry::none().is_enabled());
        assert_eq!(format!("{:?}", Telemetry::none()), "Telemetry(disabled)");
    }

    #[test]
    fn journal_bounds_its_capacity() {
        let journal = MemoryJournal::new(2);
        for depth in 0..5 {
            journal.record(&SearchEvent {
                subtree: 0,
                depth,
                t_ns: 0,
                kind: EventKind::Backtrack,
            });
        }
        assert_eq!(journal.events().len(), 2);
        assert_eq!(journal.dropped(), 3);
        let json = journal.to_json();
        assert!(json.contains("\"dropped\":3"), "{json}");
        assert!(json.contains("\"event\":\"backtrack\""), "{json}");
    }

    #[test]
    fn events_serialize_their_payload() {
        let branch = SearchEvent {
            subtree: 3,
            depth: 7,
            t_ns: 1500,
            kind: EventKind::Branch {
                dim: 2,
                pair: 9,
                component: true,
            },
        };
        assert_eq!(
            branch.to_json(),
            "{\"subtree\":3,\"depth\":7,\"t_ns\":1500,\"event\":\"branch\",\"dim\":2,\"pair\":9,\"component\":true}"
        );
        let prune = SearchEvent {
            subtree: 0,
            depth: 1,
            t_ns: 0,
            kind: EventKind::Prune {
                rule: PruneRule::C4,
            },
        };
        assert!(prune.to_json().contains("\"rule\":\"c4\""));
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn stats_json_covers_every_counter() {
        let stats = SolverStats {
            nodes: 5,
            leaves: 1,
            c2_conflicts: 2,
            depth_histogram: vec![1, 2, 2],
            refuting_bound: Some(BoundKind::Dff),
            refuted_by_bounds: true,
            ..SolverStats::default()
        };
        let json = stats_to_json(&stats);
        assert!(json.contains("\"nodes\":5"), "{json}");
        assert!(json.contains("\"c2\":2"), "{json}");
        assert!(json.contains("\"depth_histogram\":[1,2,2]"), "{json}");
        assert!(json.contains("\"refuting_bound\":\"dff\""), "{json}");
        assert!(json.contains("\"timings\":{\"propagate_ns\":0"), "{json}");
    }

    #[test]
    fn search_streams_events_into_the_journal() {
        use crate::{Opp, SolveOutcome, SolverConfig};
        use recopack_model::{Chip, Instance, Task};

        let journal = Arc::new(MemoryJournal::new(100_000));
        let config = SolverConfig {
            use_bounds: false,
            use_heuristics: false,
            telemetry: Telemetry::to(journal.clone()),
            ..SolverConfig::default()
        };
        // Search-heavy infeasible: five 2x2x2 tasks, one 4x4 time slot.
        let mut builder = Instance::builder().chip(Chip::square(4)).horizon(2);
        for i in 0..5 {
            builder = builder.task(Task::new(format!("t{i}"), 2, 2, 2));
        }
        let instance = builder.build().expect("valid").with_transitive_closure();
        let (outcome, stats) = Opp::new(&instance).with_config(config).solve_with_stats();
        assert!(matches!(outcome, SolveOutcome::Infeasible(_)));
        assert_eq!(journal.searches_finished(), 1);
        assert_eq!(journal.dropped(), 0);

        let events = journal.events();
        let count = |name: &str| events.iter().filter(|e| e.kind.name() == name).count() as u64;
        assert!(stats.nodes > 0, "the instance must actually search");
        // Every conflict surfaces as a prune event, every successful
        // cascade as a propagate event, and every cascade except the
        // root seeding one follows a branch.
        assert_eq!(count("prune"), stats.conflicts());
        assert_eq!(count("branch") + 1, count("prune") + count("propagate"));
        assert_eq!(count("leaf"), stats.leaves);
        assert!(count("backtrack") > 0);
        // Sequential search: every event sits in subtree 0.
        assert!(events.iter().all(|e| e.subtree == 0));
    }

    #[test]
    fn report_is_versioned() {
        let report = SolveReport {
            command: "solve".into(),
            instance: "x.rpk".into(),
            outcome: "feasible".into(),
            threads: 2,
            decisions: 1,
            wall_ms: 1.25,
            stats: SolverStats::default(),
            events: None,
            journal_dropped: None,
            nodes_per_sec: None,
            propagation_events_per_sec: None,
        };
        let json = report.to_json();
        assert!(
            json.starts_with(&format!("{{\"schema_version\":{TELEMETRY_SCHEMA_VERSION}")),
            "{json}"
        );
        assert!(json.contains("\"wall_ms\":1.250"), "{json}");
        assert!(json.contains("\"stats\":{"), "{json}");
        assert!(json.contains("\"events\":null"), "{json}");
        assert!(json.contains("\"journal_dropped\":null"), "{json}");
        assert!(json.contains("\"nodes_per_sec\":null"), "{json}");
        assert!(
            json.contains("\"propagation_events_per_sec\":null"),
            "{json}"
        );
    }

    #[test]
    fn report_v2_roundtrips_through_the_shared_parser() {
        let report = SolveReport {
            command: "bmp".into(),
            instance: "suite \"de\"".into(),
            outcome: "optimal chip 12x12".into(),
            threads: 4,
            decisions: 7,
            wall_ms: 98.5,
            stats: SolverStats {
                nodes: 321,
                leaves: 2,
                c2_conflicts: 11,
                depth_histogram: vec![1, 4, 9],
                propagate_ns: 1_000,
                bounds_ns: 2_000,
                realize_ns: 3_000,
                prune_ns: [10, 20, 30, 40],
                ..SolverStats::default()
            },
            events: Some(EventTotals {
                branches: 100,
                propagates: 60,
                prunes: [30, 5, 4, 1],
                backtracks: 100,
                leaves_accepted: 1,
                leaves_rejected: 1,
                max_depth: 17,
            }),
            journal_dropped: Some(3),
            nodes_per_sec: Some(4_250.0),
            propagation_events_per_sec: Some(19_301.5),
        };
        let json = recopack_json::Json::parse(&report.to_json()).expect("report JSON parses");
        assert_eq!(
            json.get("schema_version").and_then(|v| v.as_u64()),
            Some(u64::from(TELEMETRY_SCHEMA_VERSION))
        );
        assert_eq!(json.get("command").and_then(|v| v.as_str()), Some("bmp"));
        assert_eq!(
            json.get("instance").and_then(|v| v.as_str()),
            Some("suite \"de\"")
        );
        assert_eq!(json.get("threads").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(json.get("decisions").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(json.get("wall_ms").and_then(|v| v.as_f64()), Some(98.5));
        let stats = json.get("stats").expect("stats object");
        assert_eq!(stats.get("nodes").and_then(|v| v.as_u64()), Some(321));
        let timings = stats.get("timings").expect("timings object");
        assert_eq!(
            timings.get("propagate_ns").and_then(|v| v.as_u64()),
            Some(1_000)
        );
        assert_eq!(
            timings.get("bounds_ns").and_then(|v| v.as_u64()),
            Some(2_000)
        );
        assert_eq!(
            timings.get("realize_ns").and_then(|v| v.as_u64()),
            Some(3_000)
        );
        let prune_ns = timings.get("prune_ns").expect("prune_ns object");
        for (rule, want) in PruneRule::ALL.into_iter().zip([10, 20, 30, 40]) {
            assert_eq!(
                prune_ns.get(rule.name()).and_then(|v| v.as_u64()),
                Some(want)
            );
        }
        let events = json.get("events").expect("events object");
        assert_eq!(events.get("branch").and_then(|v| v.as_u64()), Some(100));
        assert_eq!(events.get("max_depth").and_then(|v| v.as_u64()), Some(17));
        let prunes = events.get("prune").expect("prune totals");
        assert_eq!(prunes.get("c2").and_then(|v| v.as_u64()), Some(30));
        assert_eq!(
            json.get("journal_dropped").and_then(|v| v.as_u64()),
            Some(3)
        );
        assert_eq!(
            json.get("nodes_per_sec").and_then(|v| v.as_f64()),
            Some(4_250.0)
        );
        assert_eq!(
            json.get("propagation_events_per_sec")
                .and_then(|v| v.as_f64()),
            Some(19_301.5)
        );
    }

    #[test]
    fn progress_counters_tally_every_event_kind() {
        let counters = ProgressCounters::new();
        let ev = |depth, kind| SearchEvent {
            subtree: 0,
            depth,
            t_ns: 0,
            kind,
        };
        counters.record(&ev(
            1,
            EventKind::Branch {
                dim: 0,
                pair: 0,
                component: true,
            },
        ));
        counters.record(&ev(1, EventKind::Propagate { fixes: 3 }));
        counters.record(&ev(
            2,
            EventKind::Prune {
                rule: PruneRule::Orientation,
            },
        ));
        counters.record(&ev(9, EventKind::Backtrack));
        counters.record(&ev(4, EventKind::Leaf { accepted: true }));
        counters.record(&ev(4, EventKind::Leaf { accepted: false }));
        counters.search_finished(&SolverStats::default());

        let totals = counters.snapshot();
        assert_eq!(totals.branches, 1);
        assert_eq!(totals.propagates, 1);
        assert_eq!(totals.prunes[PruneRule::Orientation.index()], 1);
        assert_eq!(totals.prunes_total(), 1);
        assert_eq!(totals.backtracks, 1);
        assert_eq!(totals.leaves_accepted, 1);
        assert_eq!(totals.leaves_rejected, 1);
        assert_eq!(totals.max_depth, 9);
        assert_eq!(totals.total(), 6);
        assert_eq!(counters.searches_finished(), 1);
        let parsed = recopack_json::Json::parse(&totals.to_json()).expect("totals JSON parses");
        assert_eq!(parsed.get("backtrack").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn progress_counters_profile_branches_by_depth_with_clamping() {
        let counters = ProgressCounters::new();
        let branch = |depth| SearchEvent {
            subtree: 0,
            depth,
            t_ns: 0,
            kind: EventKind::Branch {
                dim: 0,
                pair: 0,
                component: true,
            },
        };
        assert!(counters.depth_profile().is_empty(), "no branches yet");
        counters.record(&branch(0));
        counters.record(&branch(2));
        counters.record(&branch(2));
        // Non-branch events never touch the profile.
        counters.record(&SearchEvent {
            subtree: 0,
            depth: 5,
            t_ns: 0,
            kind: EventKind::Backtrack,
        });
        assert_eq!(counters.depth_profile(), vec![1, 0, 2]);
        // Depths beyond the last slot are clamped into it.
        counters.record(&branch(1_000));
        let profile = counters.depth_profile();
        assert_eq!(profile.len(), 32);
        assert_eq!(*profile.last().expect("clamp slot"), 1);
    }

    #[test]
    fn progress_counters_clamp_boundary_at_the_final_depth_slot() {
        let counters = ProgressCounters::new();
        let branch = |depth| SearchEvent {
            subtree: 0,
            depth,
            t_ns: 0,
            kind: EventKind::Branch {
                dim: 1,
                pair: 3,
                component: false,
            },
        };
        // The last in-range depth and everything beyond it share slot 31.
        counters.record(&branch(PROGRESS_DEPTH_SLOTS as u32 - 1));
        counters.record(&branch(PROGRESS_DEPTH_SLOTS as u32));
        counters.record(&branch(PROGRESS_DEPTH_SLOTS as u32 + 1));
        counters.record(&branch(u32::MAX));
        let profile = counters.depth_profile();
        assert_eq!(
            profile.len(),
            PROGRESS_DEPTH_SLOTS,
            "profile never grows past the fixed slot count"
        );
        assert_eq!(*profile.last().expect("clamp slot"), 4);
        assert!(
            profile[..PROGRESS_DEPTH_SLOTS - 1].iter().all(|&n| n == 0),
            "clamped branches must not leak into lower slots"
        );
        // One in-range branch leaves the clamp slot untouched.
        counters.record(&branch(0));
        let profile = counters.depth_profile();
        assert_eq!(profile[0], 1);
        assert_eq!(*profile.last().expect("clamp slot"), 4);
    }

    #[test]
    fn fanout_delivers_to_every_sink() {
        let a = Arc::new(ProgressCounters::new());
        let b = Arc::new(MemoryJournal::new(10));
        let fanout = Fanout::new(vec![a.clone(), b.clone() as Arc<dyn TelemetrySink>]);
        fanout.record(&SearchEvent {
            subtree: 0,
            depth: 2,
            t_ns: 42,
            kind: EventKind::Backtrack,
        });
        fanout.search_finished(&SolverStats::default());
        assert_eq!(a.snapshot().backtracks, 1);
        assert_eq!(a.searches_finished(), 1);
        assert_eq!(b.events().len(), 1);
        assert_eq!(b.searches_finished(), 1);
    }

    #[test]
    fn file_journal_streams_valid_ndjson_in_subtree_order() {
        use crate::{Opp, SolveOutcome, SolverConfig};
        use recopack_model::{Chip, Instance, Task};

        let dir = std::env::temp_dir().join(format!("recopack-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.ndjson");

        let journal = Arc::new(FileJournal::create(&path).expect("journal opens"));
        let memory = Arc::new(MemoryJournal::new(1_000_000));
        let fanout: Arc<dyn TelemetrySink> = Arc::new(Fanout::new(vec![
            journal.clone() as Arc<dyn TelemetrySink>,
            memory.clone() as Arc<dyn TelemetrySink>,
        ]));
        let config = SolverConfig {
            use_bounds: false,
            use_heuristics: false,
            telemetry: Telemetry::to(fanout),
            ..SolverConfig::default()
        };
        let mut builder = Instance::builder().chip(Chip::square(4)).horizon(2);
        for i in 0..5 {
            builder = builder.task(Task::new(format!("t{i}"), 2, 2, 2));
        }
        let instance = builder.build().expect("valid").with_transitive_closure();
        let (outcome, _) = Opp::new(&instance).with_config(config).solve_with_stats();
        assert!(matches!(outcome, SolveOutcome::Infeasible(_)));
        journal.flush().expect("flush succeeds");
        assert_eq!(journal.dropped(), 0);

        let text = std::fs::read_to_string(&path).expect("trace file readable");
        let lines: Vec<&str> = text.lines().collect();
        let expected = memory.events();
        assert_eq!(lines.len() as u64, journal.recorded());
        assert_eq!(lines.len(), expected.len());
        // Single-threaded search: one worker, one shard — the file order
        // must match the in-memory journal exactly, and every line must be
        // a standalone JSON object.
        for (line, event) in lines.iter().zip(&expected) {
            let parsed = recopack_json::Json::parse(line).expect("line parses");
            assert_eq!(
                parsed.get("event").and_then(|v| v.as_str()),
                Some(event.kind.name())
            );
            assert_eq!(
                parsed.get("t_ns").and_then(|v| v.as_u64()),
                Some(event.t_ns)
            );
            assert_eq!(parsed.get("subtree").and_then(|v| v.as_u64()), Some(0));
        }
        // Timestamps within one subtree never go backwards.
        for pair in expected.windows(2) {
            assert!(pair[0].t_ns <= pair[1].t_ns);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_journal_respects_its_capacity() {
        let dir = std::env::temp_dir().join(format!("recopack-trace-cap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.ndjson");
        let journal = FileJournal::with_capacity(&path, 2).expect("journal opens");
        for depth in 0..5 {
            journal.record(&SearchEvent {
                subtree: 0,
                depth,
                t_ns: 0,
                kind: EventKind::Backtrack,
            });
        }
        journal.flush().expect("flush succeeds");
        assert_eq!(journal.recorded(), 2);
        assert_eq!(journal.dropped(), 3);
        let text = std::fs::read_to_string(&path).expect("trace file readable");
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
