//! OPP: the orthogonal packing decision problem (paper: FeasAT&FindS).

use recopack_bounds::Refutation;
use recopack_heur::{find_feasible, HeuristicConfig};
use recopack_model::{Instance, Placement};

use crate::config::{LimitKind, SolverConfig, SolverStats};
use crate::search::{Search, SearchResult};

/// Why an instance is infeasible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InfeasibilityProof {
    /// A lower bound refuted the instance without search.
    Bound(Refutation),
    /// The packing-class search exhausted every edge assignment.
    SearchExhausted,
}

impl std::fmt::Display for InfeasibilityProof {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Bound(r) => write!(f, "refuted by lower bound: {r}"),
            Self::SearchExhausted => write!(f, "packing-class search exhausted"),
        }
    }
}

/// Outcome of a decision solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A feasible packing exists; the placement has passed geometric
    /// verification.
    Feasible(Placement),
    /// No feasible packing exists.
    Infeasible(InfeasibilityProof),
    /// The named budget ran out before an answer was reached.
    ResourceLimit(LimitKind),
}

impl SolveOutcome {
    /// Whether this outcome is [`SolveOutcome::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, Self::Feasible(_))
    }

    /// The placement, if feasible.
    pub fn placement(&self) -> Option<&Placement> {
        match self {
            Self::Feasible(p) => Some(p),
            _ => None,
        }
    }
}

/// The exact feasibility solver: can the instance's tasks be packed into its
/// container while honoring all precedence constraints?
///
/// Runs the three-stage pipeline of paper §3.1: lower bounds, heuristics,
/// packing-class branch-and-bound.
///
/// # Example
///
/// ```
/// use recopack_core::Opp;
/// use recopack_model::{benchmarks, Chip};
///
/// let instance = benchmarks::de(Chip::square(32), 6).with_transitive_closure();
/// assert!(Opp::new(&instance).solve().is_feasible());
///
/// let tight = instance.with_horizon(5); // below the critical path
/// assert!(!Opp::new(&tight).solve().is_feasible());
/// ```
#[derive(Debug)]
pub struct Opp<'a> {
    instance: &'a Instance,
    config: SolverConfig,
}

impl<'a> Opp<'a> {
    /// Creates a solver with the default configuration.
    pub fn new(instance: &'a Instance) -> Self {
        Self {
            instance,
            config: SolverConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Solves the decision problem.
    pub fn solve(&self) -> SolveOutcome {
        self.solve_with_stats().0
    }

    /// Solves and reports search statistics.
    pub fn solve_with_stats(&self) -> (SolveOutcome, SolverStats) {
        let mut stats = SolverStats::default();
        if self.config.use_bounds {
            // Publish a Bounds-phase beacon for the duration of the bound
            // computation so samplers can attribute pre-search time.
            let beacon = crate::beacon::global_registry().register();
            beacon.publish(crate::beacon::pack(crate::beacon::Phase::Bounds, 0, 0, 1));
            let timer = self.config.profile.then(std::time::Instant::now);
            let refutation = recopack_bounds::refute(self.instance);
            drop(beacon);
            if let Some(t) = timer {
                stats.bounds_ns += t.elapsed().as_nanos() as u64;
            }
            if let Some(refutation) = refutation {
                stats.refuted_by_bounds = true;
                stats.refuting_bound = Some(refutation.kind());
                return (
                    SolveOutcome::Infeasible(InfeasibilityProof::Bound(refutation)),
                    stats,
                );
            }
        }
        if self.config.use_heuristics {
            if let Some(placement) = find_feasible(self.instance, &HeuristicConfig::default()) {
                stats.solved_by_heuristic = true;
                return (SolveOutcome::Feasible(placement), stats);
            }
        }
        let (result, search_stats) = Search::new(self.instance, &self.config).run();
        stats.accumulate(&search_stats);
        let outcome = match result {
            SearchResult::Feasible(p) => SolveOutcome::Feasible(p),
            SearchResult::Infeasible => {
                SolveOutcome::Infeasible(InfeasibilityProof::SearchExhausted)
            }
            SearchResult::Limit(kind) => SolveOutcome::ResourceLimit(kind),
        };
        (outcome, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{benchmarks, Chip, Task};

    #[test]
    fn feasible_outcome_carries_verified_placement() {
        let i = benchmarks::de(Chip::square(16), 14).with_transitive_closure();
        match Opp::new(&i).solve() {
            SolveOutcome::Feasible(p) => assert_eq!(p.verify(&i), Ok(())),
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn bounds_produce_named_proofs() {
        let i = benchmarks::de(Chip::square(32), 5).with_transitive_closure();
        let (outcome, stats) = Opp::new(&i).solve_with_stats();
        match outcome {
            SolveOutcome::Infeasible(InfeasibilityProof::Bound(r)) => {
                assert!(r.to_string().contains("critical path"));
            }
            other => panic!("expected bound refutation, got {other:?}"),
        }
        assert!(stats.refuted_by_bounds);
        assert_eq!(stats.nodes, 0);
    }

    #[test]
    fn search_proves_infeasibility_without_bounds() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(3)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .build()
            .expect("valid");
        let config = SolverConfig {
            use_bounds: false,
            use_heuristics: false,
            ..SolverConfig::default()
        };
        let (outcome, stats) = Opp::new(&i).with_config(config).solve_with_stats();
        assert_eq!(
            outcome,
            SolveOutcome::Infeasible(InfeasibilityProof::SearchExhausted)
        );
        assert!(!stats.refuted_by_bounds);
    }

    #[test]
    fn outcome_helpers() {
        let i = Instance::builder()
            .chip(Chip::square(1))
            .horizon(1)
            .task(Task::new("a", 1, 1, 1))
            .build()
            .expect("valid");
        let outcome = Opp::new(&i).solve();
        assert!(outcome.is_feasible());
        assert!(outcome.placement().is_some());
    }
}
