//! Always-on worker activity beacons and the sampling profiler.
//!
//! Every search worker publishes a packed *activity
//! beacon*: a single `AtomicU64` encoding its current phase, the prune rule
//! it last applied, its clamped depth, and a wrapping activity epoch. The
//! worker updates the beacon with one relaxed store at points the search
//! already touches (node expansion, propagation, conflicts, backtracks,
//! checkpoints) — no clock reads, no allocation, no branches that depend on
//! whether anyone is watching. Node counts are therefore bit-identical with
//! and without an attached sampler; `recopack-bench --check`'s exact gate
//! enforces this.
//!
//! A detached [`Sampler`] thread reads all live beacons at a configurable
//! rate (default [`DEFAULT_HZ`] = 97 Hz, prime to dodge lockstep with
//! millisecond-periodic work) and accumulates:
//!
//! * folded-stack profiles (`worker:N;phase;rule;depth-bucket count` lines,
//!   consumable by the `recopack trace --folded` / flamegraph pipeline),
//! * per-phase occupancy counts, and
//! * stall detection: a beacon whose word is unchanged across
//!   [`STALL_THRESHOLD`] consecutive samples while not idle is flagged
//!   stuck/starved.
//!
//! Beacons register in a process-global registry so a sampler observes every
//! live worker in the process — the `recopack serve` worker pool under real
//! traffic as well as a single CLI solve.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default sampling rate in Hz. Prime, so the sampler does not phase-lock
/// with millisecond-periodic solver activity.
pub const DEFAULT_HZ: u64 = 97;

/// Highest accepted sampling rate in Hz.
pub const MAX_HZ: u64 = 1000;

/// Consecutive unchanged samples after which a non-idle worker is flagged
/// stalled. At the default 97 Hz this is roughly a third of a second.
pub const STALL_THRESHOLD: u32 = 32;

const PHASE_BITS: u32 = 3;
const RULE_BITS: u32 = 3;
const DEPTH_BITS: u32 = 8;
const RULE_SHIFT: u32 = PHASE_BITS;
const DEPTH_SHIFT: u32 = PHASE_BITS + RULE_BITS;
const EPOCH_SHIFT: u32 = PHASE_BITS + RULE_BITS + DEPTH_BITS;

/// Mask for the wrapping activity epoch (the top `64 - 14 = 50` bits).
pub const EPOCH_MASK: u64 = (1 << (64 - EPOCH_SHIFT)) - 1;

/// What a worker is doing right now, as published through its beacon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Phase {
    /// Waiting for a work unit (parallel search) or not yet started.
    Idle = 0,
    /// Expanding a node: choosing the branching pair and children.
    Expand = 1,
    /// Running the propagation cascade after a decision.
    Propagate = 2,
    /// Computing lower bounds before or during search.
    Bounds = 3,
    /// Realizing a candidate leaf into coordinates.
    Realize = 4,
    /// Rolling back trail entries after an exhausted subtree.
    Backtrack = 5,
}

impl Phase {
    /// Every phase, in encoding order. A closed set: metrics label values
    /// and folded-stack frames are drawn from exactly these names.
    pub const ALL: [Phase; 6] = [
        Phase::Idle,
        Phase::Expand,
        Phase::Propagate,
        Phase::Bounds,
        Phase::Realize,
        Phase::Backtrack,
    ];

    /// Stable lowercase name used in folded stacks and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Idle => "idle",
            Phase::Expand => "expand",
            Phase::Propagate => "propagate",
            Phase::Bounds => "bounds",
            Phase::Realize => "realize",
            Phase::Backtrack => "backtrack",
        }
    }

    fn from_bits(bits: u64) -> Phase {
        match bits & 0b111 {
            1 => Phase::Expand,
            2 => Phase::Propagate,
            3 => Phase::Bounds,
            4 => Phase::Realize,
            5 => Phase::Backtrack,
            _ => Phase::Idle,
        }
    }
}

/// Prune rules a beacon can attribute samples to. `0` means "no rule".
///
/// Kept in sync with the search module's `Conflict::prune_rule` names.
pub const RULE_NAMES: [&str; 6] = ["", "c2", "c3", "c4", "orientation", "stopped"];

/// Clamps a rule code to the encodable range.
fn clamp_rule(rule: u8) -> u64 {
    u64::from(rule.min((RULE_NAMES.len() - 1) as u8))
}

/// Packs the phase/rule/depth state bits (low 14 bits, epoch zero).
///
/// Depth is clamped to 255. Combine with an epoch via [`compose`], or use
/// [`pack`] to do both at once.
#[inline]
pub fn state_bits(phase: Phase, rule: u8, depth: u32) -> u64 {
    (phase as u64) | (clamp_rule(rule) << RULE_SHIFT) | (u64::from(depth.min(255)) << DEPTH_SHIFT)
}

/// Combines state bits from [`state_bits`] with a wrapping epoch.
#[inline]
pub fn compose(bits: u64, epoch: u64) -> u64 {
    bits | ((epoch & EPOCH_MASK) << EPOCH_SHIFT)
}

/// Packs a full beacon word.
#[inline]
pub fn pack(phase: Phase, rule: u8, depth: u32, epoch: u64) -> u64 {
    compose(state_bits(phase, rule, depth), epoch)
}

/// A decoded beacon word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeaconReading {
    /// Current phase.
    pub phase: Phase,
    /// Active prune-rule code (index into [`RULE_NAMES`], 0 = none).
    pub rule: u8,
    /// Depth at the last update, clamped to 255.
    pub depth: u32,
    /// Wrapping activity epoch; changes on every beacon store.
    pub epoch: u64,
}

impl BeaconReading {
    /// Name of the active rule, or `""` when none.
    pub fn rule_name(&self) -> &'static str {
        RULE_NAMES[usize::from(self.rule) % RULE_NAMES.len()]
    }
}

/// Decodes a beacon word produced by [`pack`].
#[inline]
pub fn unpack(word: u64) -> BeaconReading {
    BeaconReading {
        phase: Phase::from_bits(word),
        rule: ((word >> RULE_SHIFT) & 0b111) as u8,
        depth: ((word >> DEPTH_SHIFT) & 0xff) as u32,
        epoch: word >> EPOCH_SHIFT,
    }
}

/// One worker's published activity word.
///
/// Writers call [`publish`](Self::publish) (a single relaxed store); readers
/// call [`load`](Self::load). The beacon carries no other state.
#[derive(Debug, Default)]
pub struct ActivityBeacon {
    word: AtomicU64,
}

impl ActivityBeacon {
    /// Publishes a packed word. Relaxed: beacons are statistical, not a
    /// synchronization edge.
    #[inline]
    pub fn publish(&self, word: u64) {
        self.word.store(word, Ordering::Relaxed);
    }

    /// Reads the current packed word.
    #[inline]
    pub fn load(&self) -> u64 {
        self.word.load(Ordering::Relaxed)
    }
}

/// The process-global beacon registry: a slot per live worker.
///
/// Slots hold weak references; a slot whose worker has exited is reused by
/// the next registration, so the registry stays bounded by the peak number
/// of concurrent workers.
#[derive(Debug, Default)]
pub struct BeaconRegistry {
    slots: Mutex<Vec<Weak<ActivityBeacon>>>,
}

impl BeaconRegistry {
    /// Registers a new beacon and returns the owning handle. The slot is
    /// released when the last `Arc` drops.
    pub fn register(&self) -> Arc<ActivityBeacon> {
        let beacon = Arc::new(ActivityBeacon::default());
        let mut slots = self.slots.lock().expect("beacon registry poisoned");
        if let Some(slot) = slots.iter_mut().find(|w| w.strong_count() == 0) {
            *slot = Arc::downgrade(&beacon);
        } else {
            slots.push(Arc::downgrade(&beacon));
        }
        beacon
    }

    /// Snapshots every live beacon as `(slot, word)` pairs. Slot indices are
    /// stable for a worker's lifetime, so samplers can track per-slot epochs.
    pub fn snapshot(&self, out: &mut Vec<(usize, u64)>) {
        out.clear();
        let slots = self.slots.lock().expect("beacon registry poisoned");
        for (slot, weak) in slots.iter().enumerate() {
            if let Some(beacon) = weak.upgrade() {
                out.push((slot, beacon.load()));
            }
        }
    }
}

/// The process-global registry all workers register into.
pub fn global_registry() -> &'static BeaconRegistry {
    static GLOBAL: OnceLock<BeaconRegistry> = OnceLock::new();
    GLOBAL.get_or_init(BeaconRegistry::default)
}

/// Buckets a clamped depth into a coarse, stable folded-stack frame.
pub fn depth_bucket(depth: u32) -> &'static str {
    match depth {
        0..=3 => "d0-3",
        4..=7 => "d4-7",
        8..=15 => "d8-15",
        16..=31 => "d16-31",
        32..=63 => "d32-63",
        64..=127 => "d64-127",
        _ => "d128+",
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct SlotTrack {
    last_word: u64,
    seen: bool,
    stale: u32,
    stalled: bool,
}

/// Accumulates beacon snapshots into a [`Profile`].
///
/// Deterministic and thread-free: feed it `(slot, word)` snapshots via
/// [`observe`](Self::observe) — the [`Sampler`] drives one from a timer
/// thread, tests can drive one by hand.
#[derive(Debug)]
pub struct ProfileBuilder {
    hz: u64,
    stall_threshold: u32,
    samples: u64,
    worker_samples: u64,
    phase_counts: [u64; Phase::ALL.len()],
    stacks: BTreeMap<String, u64>,
    tracks: Vec<SlotTrack>,
    stall_events: u64,
}

impl ProfileBuilder {
    /// A builder annotating its output with the given sampling rate.
    pub fn new(hz: u64) -> Self {
        Self {
            hz,
            stall_threshold: STALL_THRESHOLD,
            samples: 0,
            worker_samples: 0,
            phase_counts: [0; Phase::ALL.len()],
            stacks: BTreeMap::new(),
            tracks: Vec::new(),
            stall_events: 0,
        }
    }

    /// Overrides the stall threshold (consecutive unchanged non-idle
    /// samples before a worker is flagged).
    pub fn with_stall_threshold(mut self, threshold: u32) -> Self {
        self.stall_threshold = threshold.max(1);
        self
    }

    /// Folds one snapshot (as produced by [`BeaconRegistry::snapshot`]) into
    /// the profile.
    pub fn observe(&mut self, snapshot: &[(usize, u64)]) {
        self.samples += 1;
        for &(slot, word) in snapshot {
            let reading = unpack(word);
            self.worker_samples += 1;
            self.phase_counts[reading.phase as usize] += 1;
            let mut stack = format!("worker:{slot};{}", reading.phase.name());
            let rule = reading.rule_name();
            if !rule.is_empty() {
                stack.push(';');
                stack.push_str(rule);
            }
            stack.push(';');
            stack.push_str(depth_bucket(reading.depth));
            *self.stacks.entry(stack).or_insert(0) += 1;

            if slot >= self.tracks.len() {
                self.tracks.resize(slot + 1, SlotTrack::default());
            }
            let track = &mut self.tracks[slot];
            if track.seen && track.last_word == word && reading.phase != Phase::Idle {
                track.stale += 1;
                if track.stale >= self.stall_threshold && !track.stalled {
                    track.stalled = true;
                    self.stall_events += 1;
                }
            } else {
                track.stale = 0;
                track.stalled = false;
            }
            track.last_word = word;
            track.seen = true;
        }
    }

    /// Finishes accumulation.
    pub fn finish(self) -> Profile {
        let stalled_workers = self
            .tracks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.stalled)
            .map(|(slot, _)| slot)
            .collect();
        Profile {
            hz: self.hz,
            samples: self.samples,
            worker_samples: self.worker_samples,
            phase_counts: self.phase_counts,
            stacks: self.stacks,
            stalled_workers,
            stall_events: self.stall_events,
        }
    }
}

/// A finished sampling profile.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Sampling rate the profile was captured at.
    pub hz: u64,
    /// Number of sampler ticks taken.
    pub samples: u64,
    /// Number of per-worker observations (ticks × live workers).
    pub worker_samples: u64,
    /// Observations per phase, indexed by `Phase as usize`.
    pub phase_counts: [u64; Phase::ALL.len()],
    /// Folded stack → sample count.
    pub stacks: BTreeMap<String, u64>,
    /// Slots flagged stalled when sampling stopped.
    pub stalled_workers: Vec<usize>,
    /// Times any worker crossed the stall threshold.
    pub stall_events: u64,
}

impl Profile {
    /// Occupancy fraction (0..=1) for one phase; 0 when nothing was sampled.
    pub fn occupancy(&self, phase: Phase) -> f64 {
        if self.worker_samples == 0 {
            return 0.0;
        }
        self.phase_counts[phase as usize] as f64 / self.worker_samples as f64
    }

    /// Renders folded stacks (`frame;frame;frame count` per line), the
    /// format `recopack trace --folded` emits and flamegraph tooling eats.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// The `k` heaviest stacks, by sample count descending (ties broken by
    /// stack name for determinism).
    pub fn top(&self, k: usize) -> Vec<(&str, u64)> {
        let mut rows: Vec<(&str, u64)> = self
            .stacks
            .iter()
            .map(|(stack, &count)| (stack.as_str(), count))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows.truncate(k);
        rows
    }

    /// Renders the JSON summary used by `?format=json` and the CLI.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"hz\":{},", self.hz));
        out.push_str(&format!("\"samples\":{},", self.samples));
        out.push_str(&format!("\"worker_samples\":{},", self.worker_samples));
        out.push_str("\"phase_occupancy\":{");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{:.4}",
                phase.name(),
                self.occupancy(*phase)
            ));
        }
        out.push_str("},");
        out.push_str(&format!(
            "\"stalled_workers\":[{}],",
            self.stalled_workers
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str(&format!("\"stall_events\":{},", self.stall_events));
        out.push_str("\"stacks\":[");
        for (i, (stack, count)) in self.top(usize::MAX).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"stack\":\"{stack}\",\"samples\":{count}}}"));
        }
        out.push_str("]}");
        out
    }
}

/// A detached sampler thread reading the global registry.
///
/// Start with [`Sampler::start`], stop (and collect the [`Profile`]) with
/// [`Sampler::stop`]. Dropping without stopping detaches the thread, which
/// then exits on its next tick.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<Profile>>,
}

impl Sampler {
    /// Spawns the sampler at `hz` (clamped to `1..=`[`MAX_HZ`]).
    pub fn start(hz: u64) -> Sampler {
        let hz = hz.clamp(1, MAX_HZ);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("recopack-sampler".to_string())
            .spawn(move || {
                let interval = Duration::from_nanos(1_000_000_000 / hz);
                let mut builder = ProfileBuilder::new(hz);
                let mut snapshot = Vec::new();
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    global_registry().snapshot(&mut snapshot);
                    builder.observe(&snapshot);
                }
                builder.finish()
            })
            .expect("spawn sampler thread");
        Sampler {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops sampling and returns the accumulated profile.
    pub fn stop(mut self) -> Profile {
        self.stop.store(true, Ordering::Relaxed);
        let thread = self.thread.take().expect("sampler already stopped");
        thread.join().expect("sampler thread panicked")
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_round_trips_all_phases_and_rules() {
        for phase in Phase::ALL {
            for rule in 0..RULE_NAMES.len() as u8 {
                let word = pack(phase, rule, 17, 42);
                let reading = unpack(word);
                assert_eq!(reading.phase, phase);
                assert_eq!(reading.rule, rule);
                assert_eq!(reading.depth, 17);
                assert_eq!(reading.epoch, 42);
            }
        }
    }

    #[test]
    fn depth_clamps_to_255() {
        let reading = unpack(pack(Phase::Expand, 0, 100_000, 1));
        assert_eq!(reading.depth, 255);
    }

    #[test]
    fn epoch_wraps_at_fifty_bits() {
        let reading = unpack(pack(Phase::Expand, 0, 0, EPOCH_MASK + 5));
        assert_eq!(reading.epoch, 4);
    }

    #[test]
    fn registry_reuses_dead_slots() {
        let registry = BeaconRegistry::default();
        let first = registry.register();
        first.publish(pack(Phase::Expand, 0, 1, 1));
        drop(first);
        let second = registry.register();
        second.publish(pack(Phase::Propagate, 0, 2, 1));
        let mut snapshot = Vec::new();
        registry.snapshot(&mut snapshot);
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].0, 0, "dead slot 0 should be reused");
        assert_eq!(unpack(snapshot[0].1).phase, Phase::Propagate);
    }

    #[test]
    fn builder_accumulates_folded_stacks_and_occupancy() {
        let mut builder = ProfileBuilder::new(DEFAULT_HZ);
        builder.observe(&[
            (0, pack(Phase::Expand, 0, 5, 1)),
            (1, pack(Phase::Propagate, 2, 9, 1)),
        ]);
        builder.observe(&[(0, pack(Phase::Expand, 0, 6, 2))]);
        let profile = builder.finish();
        assert_eq!(profile.samples, 2);
        assert_eq!(profile.worker_samples, 3);
        let folded = profile.to_folded();
        assert!(folded.contains("worker:0;expand;d4-7 2"), "{folded}");
        assert!(folded.contains("worker:1;propagate;c3;d8-15 1"), "{folded}");
        assert!((profile.occupancy(Phase::Expand) - 2.0 / 3.0).abs() < 1e-9);
        assert!(profile.stalled_workers.is_empty());
    }

    #[test]
    fn unchanged_nonidle_worker_is_flagged_stalled() {
        let mut builder = ProfileBuilder::new(DEFAULT_HZ).with_stall_threshold(3);
        let frozen = pack(Phase::Propagate, 0, 4, 77);
        for _ in 0..5 {
            builder.observe(&[(2, frozen)]);
        }
        let profile = builder.finish();
        assert_eq!(profile.stalled_workers, vec![2]);
        assert_eq!(profile.stall_events, 1);
    }

    #[test]
    fn idle_workers_are_never_stalled() {
        let mut builder = ProfileBuilder::new(DEFAULT_HZ).with_stall_threshold(2);
        let idle = pack(Phase::Idle, 0, 0, 3);
        for _ in 0..10 {
            builder.observe(&[(0, idle)]);
        }
        let profile = builder.finish();
        assert!(profile.stalled_workers.is_empty());
        assert_eq!(profile.stall_events, 0);
    }

    #[test]
    fn progressing_worker_resets_stall_tracking() {
        let mut builder = ProfileBuilder::new(DEFAULT_HZ).with_stall_threshold(3);
        for epoch in 0..20 {
            builder.observe(&[(0, pack(Phase::Expand, 0, 4, epoch))]);
        }
        let profile = builder.finish();
        assert!(profile.stalled_workers.is_empty());
        assert_eq!(profile.stall_events, 0);
    }

    #[test]
    fn json_summary_lists_phases_and_stacks() {
        let mut builder = ProfileBuilder::new(50);
        builder.observe(&[(0, pack(Phase::Realize, 0, 30, 1))]);
        let json = builder.finish().to_json();
        assert!(json.contains("\"hz\":50"), "{json}");
        assert!(json.contains("\"realize\":1.0000"), "{json}");
        assert!(
            json.contains("{\"stack\":\"worker:0;realize;d16-31\",\"samples\":1}"),
            "{json}"
        );
    }

    #[test]
    fn sampler_thread_starts_and_stops() {
        let beacon = global_registry().register();
        beacon.publish(pack(Phase::Expand, 0, 3, 1));
        let sampler = Sampler::start(500);
        std::thread::sleep(Duration::from_millis(30));
        let profile = sampler.stop();
        assert!(profile.samples > 0);
        // Other tests in the process may have live beacons too; ours must
        // be among the observations.
        assert!(profile.worker_samples >= profile.samples);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn beacon_word_round_trips(
            phase_idx in 0usize..6,
            rule in 0u8..6,
            depth in 0u32..256,
            epoch in 0u64..(1u64 << 50),
        ) {
            let phase = Phase::ALL[phase_idx];
            let reading = unpack(pack(phase, rule, depth, epoch));
            prop_assert_eq!(reading.phase, phase);
            prop_assert_eq!(reading.rule, rule);
            prop_assert_eq!(reading.depth, depth);
            prop_assert_eq!(reading.epoch, epoch);
        }
    }
}
