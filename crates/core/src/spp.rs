//! SPP: strip packing — the minimal makespan on a fixed chip
//! (paper: MinT&FindS, the problem behind Figure 7).

use recopack_model::{Dim, Instance, Placement};

use crate::config::{SolverConfig, SolverStats};
use crate::opp::{Opp, SolveOutcome};

/// Result of a makespan minimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SppResult {
    /// Minimal makespan (execution time).
    pub makespan: u64,
    /// A verified placement achieving it.
    pub placement: Placement,
    /// Accumulated statistics over all decision solves.
    pub stats: SolverStats,
    /// Number of OPP decision problems solved.
    pub decisions: u32,
}

/// Minimizes the execution time `T` such that all tasks fit `W × H × T`
/// (binary search; the instance's own horizon is ignored).
///
/// # Example
///
/// ```
/// use recopack_core::Spp;
/// use recopack_model::{benchmarks, Chip};
///
/// // Table 1 / Fig. 7: on a 32x32 chip the DE benchmark needs 6 cycles.
/// let instance = benchmarks::de(Chip::square(32), 1).with_transitive_closure();
/// let result = Spp::new(&instance).solve().expect("fits the chip");
/// assert_eq!(result.makespan, 6);
/// ```
#[derive(Debug)]
pub struct Spp<'a> {
    instance: &'a Instance,
    config: SolverConfig,
}

impl<'a> Spp<'a> {
    /// Creates a solver with the default configuration.
    pub fn new(instance: &'a Instance) -> Self {
        Self {
            instance,
            config: SolverConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// An upper bound used to start the search: serialize everything in
    /// topological order.
    pub fn serial_upper_bound(&self) -> u64 {
        self.instance.sizes(Dim::Time).iter().sum()
    }

    /// A lower bound from the critical path, the longest single task, and
    /// the volume argument.
    pub fn lower_bound(&self) -> u64 {
        let critical = self.instance.critical_path_length();
        let longest = self
            .instance
            .sizes(Dim::Time)
            .into_iter()
            .max()
            .unwrap_or(0);
        let area = self.instance.chip().area();
        let volume = if area == 0 {
            0
        } else {
            self.instance.total_volume().div_ceil(area)
        };
        critical.max(longest).max(volume)
    }

    /// Finds the minimal makespan; `None` when some task does not fit the
    /// chip spatially (no horizon helps) or the budget ran out.
    pub fn solve(&self) -> Option<SppResult> {
        let chip = self.instance.chip();
        if self
            .instance
            .tasks()
            .iter()
            .any(|t| t.width() > chip.width() || t.height() > chip.height())
        {
            return None;
        }
        let mut stats = SolverStats::default();
        let mut decisions = 0;
        let mut check = |horizon: u64| -> Option<Option<Placement>> {
            let candidate = self.instance.clone().with_horizon(horizon);
            let (outcome, s) = Opp::new(&candidate)
                .with_config(self.config.clone())
                .solve_with_stats();
            decisions += 1;
            stats.accumulate(&s);
            match outcome {
                SolveOutcome::Feasible(p) => Some(Some(p)),
                SolveOutcome::Infeasible(_) => Some(None),
                SolveOutcome::ResourceLimit(_) => None,
            }
        };

        let mut lo = self.lower_bound();
        if self.instance.task_count() == 0 {
            let empty = self.instance.clone().with_horizon(0);
            return Some(SppResult {
                makespan: 0,
                placement: Placement::new(vec![], &empty),
                stats,
                decisions,
            });
        }
        // The serial schedule is always feasible once tasks fit spatially.
        let mut best_t = self.serial_upper_bound();
        let mut best_placement = match check(best_t)? {
            Some(p) => p,
            None => unreachable!("serial horizon always admits a packing"),
        };
        while lo < best_t {
            let mid = lo + (best_t - lo) / 2;
            match check(mid)? {
                Some(p) => {
                    best_t = mid;
                    best_placement = p;
                }
                None => lo = mid + 1,
            }
        }
        Some(SppResult {
            makespan: best_t,
            placement: best_placement,
            stats,
            decisions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{benchmarks, Chip, Task};

    #[test]
    fn de_on_16_needs_14() {
        let i = benchmarks::de(Chip::square(16), 1).with_transitive_closure();
        let r = Spp::new(&i).solve().expect("fits");
        assert_eq!(r.makespan, 14);
        assert!(r.placement.verify(&i.with_horizon(14)).is_ok());
    }

    #[test]
    fn de_without_precedence_on_16_needs_13() {
        let i = benchmarks::de(Chip::square(16), 1).without_precedence();
        let r = Spp::new(&i).solve().expect("fits");
        assert_eq!(r.makespan, 13);
    }

    #[test]
    fn chip_too_small_returns_none() {
        let i = benchmarks::de(Chip::square(15), 1);
        assert_eq!(Spp::new(&i).solve(), None);
    }

    #[test]
    fn single_task_makespan_is_duration() {
        let i = Instance::builder()
            .chip(Chip::square(4))
            .horizon(1)
            .task(Task::new("a", 2, 2, 5))
            .build()
            .expect("valid");
        let r = Spp::new(&i).solve().expect("fits");
        assert_eq!(r.makespan, 5);
    }

    #[test]
    fn bounds_bracket_the_answer() {
        let i = benchmarks::de(Chip::square(17), 1).with_transitive_closure();
        let s = Spp::new(&i);
        assert!(s.lower_bound() <= 13);
        assert!(s.serial_upper_bound() >= 13);
        let r = s.solve().expect("fits");
        assert_eq!(r.makespan, 13);
    }
}
