//! FixedS problems: start times given, only space is packed
//! (paper: FeasA&FixedS and MinA&FixedS, the cases solved in [22, 23]).
//!
//! With the schedule fixed, every time slot of the packing-class state is
//! determined by interval overlap, and the search degenerates to the purely
//! two-dimensional problem the paper highlights in §4: "the nature of the
//! data structures simplifies these problems from three-dimensional to
//! purely two-dimensional ones."

use recopack_model::{Chip, Instance, Placement, Schedule};

use crate::config::{SolverConfig, SolverStats};
use crate::opp::{InfeasibilityProof, SolveOutcome};
use crate::search::{Search, SearchResult};

/// Solver for problems with prescribed start times.
///
/// # Example
///
/// ```
/// use recopack_core::FixedSchedule;
/// use recopack_model::{Chip, Instance, Schedule, Task};
///
/// let instance = Instance::builder()
///     .chip(Chip::new(4, 2))
///     .horizon(2)
///     .task(Task::new("a", 2, 2, 2))
///     .task(Task::new("b", 2, 2, 2))
///     .build()?;
/// // Both tasks start at 0: they must sit side by side.
/// let schedule = Schedule::new(vec![0, 0]);
/// let outcome = FixedSchedule::new(&instance, &schedule).feasible();
/// assert!(outcome.is_feasible());
/// # Ok::<(), recopack_model::BuildError>(())
/// ```
#[derive(Debug)]
pub struct FixedSchedule<'a> {
    instance: &'a Instance,
    schedule: &'a Schedule,
    config: SolverConfig,
}

impl<'a> FixedSchedule<'a> {
    /// Creates a solver for `instance` under the given start times.
    pub fn new(instance: &'a Instance, schedule: &'a Schedule) -> Self {
        Self {
            instance,
            schedule,
            config: SolverConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Decides spatial feasibility under the fixed starts (FeasA&FixedS).
    pub fn feasible(&self) -> SolveOutcome {
        self.feasible_with_stats().0
    }

    /// Decides spatial feasibility and reports statistics.
    pub fn feasible_with_stats(&self) -> (SolveOutcome, SolverStats) {
        let stats = SolverStats::default();
        if !self.schedule.respects_precedence(self.instance) {
            return (
                SolveOutcome::Infeasible(InfeasibilityProof::SearchExhausted),
                stats,
            );
        }
        // Energy bound with exact starts: at every start time, running tasks
        // must fit the chip area.
        if self.config.use_bounds {
            if let Some(refutation) = self.energy_refutation() {
                let mut s = stats;
                s.refuted_by_bounds = true;
                s.refuting_bound = Some(refutation.kind());
                return (
                    SolveOutcome::Infeasible(InfeasibilityProof::Bound(refutation)),
                    s,
                );
            }
        }
        let search = Search::with_fixed_starts(
            self.instance,
            &self.config,
            Some(self.schedule.starts().to_vec()),
        );
        let (result, search_stats) = search.run();
        let outcome = match result {
            SearchResult::Feasible(p) => SolveOutcome::Feasible(p),
            SearchResult::Infeasible => {
                SolveOutcome::Infeasible(InfeasibilityProof::SearchExhausted)
            }
            SearchResult::Limit(kind) => SolveOutcome::ResourceLimit(kind),
        };
        (outcome, search_stats)
    }

    fn energy_refutation(&self) -> Option<recopack_bounds::Refutation> {
        let starts = self.schedule.starts();
        let capacity = self.instance.chip().area();
        for (i, &tau) in starts.iter().enumerate() {
            let _ = i;
            let area: u64 = starts
                .iter()
                .zip(self.instance.tasks())
                .filter(|&(&s, t)| s <= tau && tau < s + t.duration())
                .map(|(_, t)| t.area())
                .sum();
            if area > capacity {
                return Some(recopack_bounds::Refutation::Energy {
                    time: tau,
                    area,
                    capacity,
                });
            }
        }
        None
    }

    /// Minimizes the square chip under the fixed starts (MinA&FixedS).
    ///
    /// Returns the minimal side and a verified placement; `None` when the
    /// schedule itself is invalid or the budget ran out.
    pub fn min_square_chip(&self) -> Option<(u64, Placement, SolverStats)> {
        if !self.schedule.respects_precedence(self.instance) {
            return None;
        }
        let mut stats = SolverStats::default();
        let mut check = |side: u64| -> Option<Option<Placement>> {
            let candidate = self.instance.clone().with_chip(Chip::square(side));
            let solver =
                FixedSchedule::new(&candidate, self.schedule).with_config(self.config.clone());
            let (outcome, s) = solver.feasible_with_stats();
            stats.accumulate(&s);
            match outcome {
                SolveOutcome::Feasible(p) => Some(Some(p)),
                SolveOutcome::Infeasible(_) => Some(None),
                SolveOutcome::ResourceLimit(_) => None,
            }
        };
        let mut lo = self
            .instance
            .tasks()
            .iter()
            .map(|t| t.width().max(t.height()))
            .max()
            .unwrap_or(0);
        let mut hi = lo.max(1);
        let best: Option<(u64, Placement)>;
        loop {
            match check(hi)? {
                Some(p) => {
                    best = Some((hi, p));
                    break;
                }
                None => {
                    lo = hi + 1;
                    hi = hi.saturating_mul(2);
                }
            }
        }
        let (mut best_side, mut best_placement) = best.expect("loop breaks on success");
        while lo < best_side {
            let mid = lo + (best_side - lo) / 2;
            match check(mid)? {
                Some(p) => {
                    best_side = mid;
                    best_placement = p;
                }
                None => lo = mid + 1,
            }
        }
        Some((best_side, best_placement, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::Task;

    fn pair_instance(chip: Chip) -> Instance {
        Instance::builder()
            .chip(chip)
            .horizon(4)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .precedence("a", "b")
            .build()
            .expect("valid")
    }

    #[test]
    fn valid_schedule_is_packed() {
        let i = pair_instance(Chip::square(2));
        let s = Schedule::new(vec![0, 2]);
        let outcome = FixedSchedule::new(&i, &s).feasible();
        let p = outcome.placement().expect("feasible").clone();
        assert_eq!(p.verify(&i), Ok(()));
        assert_eq!(p.schedule().starts(), s.starts());
    }

    #[test]
    fn schedule_violating_precedence_is_rejected() {
        let i = pair_instance(Chip::square(2));
        let s = Schedule::new(vec![2, 0]);
        assert!(!FixedSchedule::new(&i, &s).feasible().is_feasible());
    }

    #[test]
    fn concurrent_schedule_needs_wider_chip() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(2)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .build()
            .expect("valid");
        let s = Schedule::new(vec![0, 0]);
        assert!(!FixedSchedule::new(&i, &s).feasible().is_feasible());
        let (side, placement, _) = FixedSchedule::new(&i, &s)
            .min_square_chip()
            .expect("some chip works");
        assert_eq!(side, 4);
        assert!(placement.verify(&i.with_chip(Chip::square(4))).is_ok());
    }

    #[test]
    fn min_chip_for_serial_schedule_matches_task() {
        let i = pair_instance(Chip::square(2));
        let s = Schedule::new(vec![0, 2]);
        let (side, _, _) = FixedSchedule::new(&i, &s)
            .min_square_chip()
            .expect("feasible");
        assert_eq!(side, 2);
    }
}
