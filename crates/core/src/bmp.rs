//! BMP: base minimization — the smallest square chip for a fixed deadline
//! (paper: MinA&FindS, solved in Table 1 and Table 2).

use recopack_model::{Chip, Instance, Placement};

use crate::config::{SolverConfig, SolverStats};
use crate::opp::{Opp, SolveOutcome};

/// Result of a base minimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BmpResult {
    /// Minimal square chip side.
    pub side: u64,
    /// A verified placement on the minimal chip.
    pub placement: Placement,
    /// Accumulated statistics over all decision solves.
    pub stats: SolverStats,
    /// Number of OPP decision problems solved.
    pub decisions: u32,
}

/// Minimizes the square chip side `h` such that all tasks fit `h × h × T`
/// (binary search over the monotone feasibility predicate, paper §3.1).
///
/// The instance's own chip is ignored; only its horizon, tasks and
/// precedence matter.
///
/// # Example
///
/// ```
/// use recopack_core::Bmp;
/// use recopack_model::{benchmarks, Chip};
///
/// // Table 1, row T = 13: minimal chip 17x17.
/// let instance = benchmarks::de(Chip::square(1), 13).with_transitive_closure();
/// let result = Bmp::new(&instance).solve().expect("feasible");
/// assert_eq!(result.side, 17);
/// ```
#[derive(Debug)]
pub struct Bmp<'a> {
    instance: &'a Instance,
    config: SolverConfig,
}

impl<'a> Bmp<'a> {
    /// Creates a solver with the default configuration.
    pub fn new(instance: &'a Instance) -> Self {
        Self {
            instance,
            config: SolverConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Finds the minimal square chip; `None` when no chip works (the
    /// critical path exceeds the horizon) or the budget ran out.
    pub fn solve(&self) -> Option<BmpResult> {
        // No chip can beat the precedence structure.
        if self.instance.critical_path_length() > self.instance.horizon() {
            return None;
        }
        let mut stats = SolverStats::default();
        let mut decisions = 0;
        let mut check = |side: u64| -> Option<Option<Placement>> {
            let candidate = self.instance.clone().with_chip(Chip::square(side));
            let (outcome, s) = Opp::new(&candidate)
                .with_config(self.config.clone())
                .solve_with_stats();
            decisions += 1;
            stats.accumulate(&s);
            match outcome {
                SolveOutcome::Feasible(p) => Some(Some(p)),
                SolveOutcome::Infeasible(_) => Some(None),
                SolveOutcome::ResourceLimit(_) => None,
            }
        };

        // Lower bound: every task must fit; upper bound by doubling.
        let mut lo = self
            .instance
            .tasks()
            .iter()
            .map(|t| t.width().max(t.height()))
            .max()
            .unwrap_or(0);
        if lo == 0 {
            // No tasks: the 0x0 chip trivially works.
            let empty = self.instance.clone().with_chip(Chip::square(0));
            let placement = Placement::new(vec![], &empty);
            return Some(BmpResult {
                side: 0,
                placement,
                stats,
                decisions,
            });
        }
        let mut hi = lo;
        let best: Option<(u64, Placement)>;
        loop {
            match check(hi)? {
                Some(p) => {
                    best = Some((hi, p));
                    break;
                }
                None => {
                    lo = hi + 1;
                    hi = hi.saturating_mul(2);
                }
            }
        }
        // Invariant: feasible at `hi` (stored in best), infeasible below `lo`.
        let (mut best_side, mut best_placement) = best.expect("loop breaks on success");
        while lo < best_side {
            let mid = lo + (best_side - lo) / 2;
            match check(mid)? {
                Some(p) => {
                    best_side = mid;
                    best_placement = p;
                }
                None => lo = mid + 1,
            }
        }
        Some(BmpResult {
            side: best_side,
            placement: best_placement,
            stats,
            decisions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{benchmarks, Task};

    #[test]
    fn de_row_t14_minimal_chip_is_16() {
        let i = benchmarks::de(Chip::square(1), 14).with_transitive_closure();
        let r = Bmp::new(&i).solve().expect("feasible");
        assert_eq!(r.side, 16);
        assert!(r.placement.verify(&i.with_chip(Chip::square(16))).is_ok());
        // The a-priori lower bound (largest module side) is already 16, so
        // a single decision can suffice.
        assert!(r.decisions >= 1);
    }

    #[test]
    fn impossible_horizon_returns_none() {
        let i = benchmarks::de(Chip::square(1), 5).with_transitive_closure();
        assert_eq!(Bmp::new(&i).solve(), None);
    }

    #[test]
    fn single_task_chip_matches_task() {
        let i = Instance::builder()
            .chip(Chip::square(1))
            .horizon(3)
            .task(Task::new("a", 3, 2, 3))
            .build()
            .expect("valid");
        let r = Bmp::new(&i).solve().expect("feasible");
        assert_eq!(r.side, 3);
    }

    #[test]
    fn empty_instance_needs_no_chip() {
        let i = Instance::builder()
            .chip(Chip::square(5))
            .horizon(1)
            .build()
            .expect("valid");
        let r = Bmp::new(&i).solve().expect("trivially feasible");
        assert_eq!(r.side, 0);
    }
}
